package interp

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/printer"
)

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.tag {
	case TagUndefined:
		return "undefined"
	case TagNull:
		return "object"
	case TagBool:
		return "boolean"
	case TagNumber:
		return "number"
	case TagString:
		return "string"
	case TagObject:
		if v.Obj().IsCallable() {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// Interned typeof results. With the tagged representation these cost
// nothing to construct, but the named values keep the evaluator's returns
// intention-revealing (and their payload pointers stable, which makes the
// string fast path in StrictEquals hit for `typeof x === typeof y`).
var (
	typeofUndefined = StringValue("undefined")
	typeofObject    = StringValue("object")
	typeofBoolean   = StringValue("boolean")
	typeofNumber    = StringValue("number")
	typeofString    = StringValue("string")
	typeofFunction  = StringValue("function")
)

// typeOfValue is TypeOf returning an interned Value.
func typeOfValue(v Value) Value {
	switch v.tag {
	case TagUndefined:
		return typeofUndefined
	case TagNull:
		return typeofObject
	case TagBool:
		return typeofBoolean
	case TagNumber:
		return typeofNumber
	case TagString:
		return typeofString
	case TagObject:
		if v.Obj().IsCallable() {
			return typeofFunction
		}
		return typeofObject
	}
	return typeofUndefined
}

// ToBoolean implements JS truthiness.
func ToBoolean(v Value) bool {
	switch v.tag {
	case TagUndefined, TagNull:
		return false
	case TagBool:
		return v.num != 0
	case TagNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case TagString:
		return v.slen != 0
	case TagObject:
		return true
	}
	return false
}

// ToNumber implements JS numeric coercion; objects go through ToPrimitive,
// which may run user valueOf/toString code.
func (in *Interp) ToNumber(v Value) (float64, error) {
	switch v.tag {
	case TagUndefined:
		return math.NaN(), nil
	case TagNull:
		return 0, nil
	case TagBool:
		return v.num, nil
	case TagNumber:
		return v.num, nil
	case TagString:
		return stringToNumber(v.Str()), nil
	case TagObject:
		prim, err := in.ToPrimitive(v, "number")
		if err != nil {
			return 0, err
		}
		return in.ToNumber(prim)
	}
	return math.NaN(), nil
}

func stringToNumber(s string) float64 {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0
	}
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		if u, err := strconv.ParseUint(t[2:], 16, 64); err == nil {
			return float64(u)
		}
		return math.NaN()
	}
	if t == "Infinity" || t == "+Infinity" {
		return math.Inf(1)
	}
	if t == "-Infinity" {
		return math.Inf(-1)
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// ToStringValue implements JS string coercion; objects go through
// ToPrimitive with a string hint.
func (in *Interp) ToStringValue(v Value) (string, error) {
	switch v.tag {
	case TagUndefined:
		return "undefined", nil
	case TagNull:
		return "null", nil
	case TagBool:
		if v.num != 0 {
			return "true", nil
		}
		return "false", nil
	case TagNumber:
		return printer.FormatNumber(v.num), nil
	case TagString:
		return v.Str(), nil
	case TagObject:
		prim, err := in.ToPrimitive(v, "string")
		if err != nil {
			return "", err
		}
		if prim.IsObject() {
			return "", in.Throw("TypeError", "cannot convert object to primitive value")
		}
		return in.ToStringValue(prim)
	}
	return "", nil
}

// ToPrimitive converts an object by calling its valueOf/toString methods —
// the implicit calls of §4.1 that can hide infinite loops. Primitives pass
// through unchanged.
func (in *Interp) ToPrimitive(v Value, hint string) (Value, error) {
	o := v.Obj()
	if o == nil {
		return v, nil
	}
	methods := []string{"valueOf", "toString"}
	if hint == "string" {
		methods = []string{"toString", "valueOf"}
	}
	in.EnterAtomic()
	defer in.ExitAtomic()
	for _, name := range methods {
		m, err := in.GetMember(v, name)
		if err != nil {
			return Undefined, err
		}
		if f := m.Obj(); f.IsCallable() {
			r, err := in.Call(m, v, nil, Undefined)
			if err != nil {
				return Undefined, err
			}
			if !r.IsObject() {
				return r, nil
			}
		}
	}
	return Undefined, in.Throw("TypeError", "cannot convert object to primitive value")
}

// ToInt32 and ToUint32 implement the bitwise-operator coercions. The
// reduction must go through math.Mod, not int64: for |f| ≥ 2^63 the
// float→int64 conversion is out of range (undefined result, 0 in practice),
// which made 1e20|0 and 1e20>>>0 return 0 instead of 1661992960.
func ToInt32(f float64) int32 {
	return int32(ToUint32(f))
}

// ToUint32 truncates to an unsigned 32-bit integer per ES5 §9.6: truncate,
// reduce modulo 2^32, normalize into [0, 2^32).
func ToUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	const two32 = 4294967296
	f = math.Mod(math.Trunc(f), two32)
	if f < 0 {
		f += two32
	}
	return uint32(f)
}

// StrictEquals implements ===. Same-tag is required first; the number
// compare then falls out of Go's float compare (NaN != NaN included), and
// strings compare by payload with a pointer-identity fast path.
func StrictEquals(a, b Value) bool {
	if a.tag != b.tag {
		return false
	}
	switch a.tag {
	case TagUndefined, TagNull:
		return true
	case TagBool:
		return a.num == b.num
	case TagNumber:
		return a.num == b.num
	case TagString:
		return sameString(a, b)
	case TagObject:
		return a.ptr == b.ptr
	}
	return false
}

// looseEquals implements ==.
func (in *Interp) looseEquals(a, b Value) (bool, error) {
	aNullish := a.IsNullish()
	bNullish := b.IsNullish()
	switch {
	case aNullish && bNullish:
		return true, nil
	case aNullish || bNullish:
		return false, nil
	}
	if a.tag == b.tag && a.tag != TagObject {
		return StrictEquals(a, b), nil
	}
	aIsObj := a.IsObject()
	bIsObj := b.IsObject()
	switch {
	case aIsObj && bIsObj:
		return a.ptr == b.ptr, nil
	case aIsObj:
		prim, err := in.ToPrimitive(a, "default")
		if err != nil {
			return false, err
		}
		return in.looseEquals(prim, b)
	case bIsObj:
		prim, err := in.ToPrimitive(b, "default")
		if err != nil {
			return false, err
		}
		return in.looseEquals(a, prim)
	}
	// Mixed primitives: compare numerically, except bool normalization.
	an, err := in.ToNumber(a)
	if err != nil {
		return false, err
	}
	bn, err := in.ToNumber(b)
	if err != nil {
		return false, err
	}
	return an == bn, nil
}

// applyBinary implements the binary operators. Number/number and (for +)
// string/string operands take tag-checked fast paths that never allocate;
// everything else goes through the coercion ladder.
func (in *Interp) applyBinary(op string, l, r Value) (Value, error) {
	switch op {
	case "+":
		if l.tag == TagNumber && r.tag == TagNumber {
			return NumberValue(l.num + r.num), nil
		}
		lp, err := in.ToPrimitive(l, "default")
		if err != nil {
			return Undefined, err
		}
		rp, err := in.ToPrimitive(r, "default")
		if err != nil {
			return Undefined, err
		}
		if lp.IsString() || rp.IsString() {
			ls, err := in.ToStringValue(lp)
			if err != nil {
				return Undefined, err
			}
			rs, err := in.ToStringValue(rp)
			if err != nil {
				return Undefined, err
			}
			return in.concatStrings(ls, rs)
		}
		ln, err := in.ToNumber(lp)
		if err != nil {
			return Undefined, err
		}
		rn, err := in.ToNumber(rp)
		if err != nil {
			return Undefined, err
		}
		return NumberValue(ln + rn), nil
	case "-", "*", "/", "%", "**":
		ln, err := in.ToNumber(l)
		if err != nil {
			return Undefined, err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return Undefined, err
		}
		switch op {
		case "-":
			return NumberValue(ln - rn), nil
		case "*":
			return NumberValue(ln * rn), nil
		case "/":
			return NumberValue(ln / rn), nil
		case "%":
			return NumberValue(math.Mod(ln, rn)), nil
		default:
			return NumberValue(math.Pow(ln, rn)), nil
		}
	case "<", ">", "<=", ">=":
		lp, err := in.ToPrimitive(l, "number")
		if err != nil {
			return Undefined, err
		}
		rp, err := in.ToPrimitive(r, "number")
		if err != nil {
			return Undefined, err
		}
		if lp.IsString() && rp.IsString() {
			ls, rs := lp.Str(), rp.Str()
			switch op {
			case "<":
				return BoolValue(ls < rs), nil
			case ">":
				return BoolValue(ls > rs), nil
			case "<=":
				return BoolValue(ls <= rs), nil
			default:
				return BoolValue(ls >= rs), nil
			}
		}
		ln, err := in.ToNumber(lp)
		if err != nil {
			return Undefined, err
		}
		rn, err := in.ToNumber(rp)
		if err != nil {
			return Undefined, err
		}
		if math.IsNaN(ln) || math.IsNaN(rn) {
			return False, nil
		}
		switch op {
		case "<":
			return BoolValue(ln < rn), nil
		case ">":
			return BoolValue(ln > rn), nil
		case "<=":
			return BoolValue(ln <= rn), nil
		default:
			return BoolValue(ln >= rn), nil
		}
	case "==":
		eq, err := in.looseEquals(l, r)
		return BoolValue(eq), err
	case "!=":
		eq, err := in.looseEquals(l, r)
		return BoolValue(!eq), err
	case "===":
		return BoolValue(StrictEquals(l, r)), nil
	case "!==":
		return BoolValue(!StrictEquals(l, r)), nil
	case "&", "|", "^", "<<", ">>":
		ln, err := in.ToNumber(l)
		if err != nil {
			return Undefined, err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return Undefined, err
		}
		li := ToInt32(ln)
		ri := ToInt32(rn)
		switch op {
		case "&":
			return NumberValue(float64(li & ri)), nil
		case "|":
			return NumberValue(float64(li | ri)), nil
		case "^":
			return NumberValue(float64(li ^ ri)), nil
		case "<<":
			return NumberValue(float64(li << (uint32(ri) & 31))), nil
		default:
			return NumberValue(float64(li >> (uint32(ri) & 31))), nil
		}
	case ">>>":
		ln, err := in.ToNumber(l)
		if err != nil {
			return Undefined, err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return Undefined, err
		}
		return NumberValue(float64(ToUint32(ln) >> (ToUint32(rn) & 31))), nil
	case "instanceof":
		f := r.Obj()
		if !f.IsCallable() {
			return Undefined, in.Throw("TypeError", "right-hand side of instanceof is not callable")
		}
		// `x instanceof boundFn` checks against the bound *target*'s
		// prototype (spec: bound-function [[HasInstance]] delegates). The
		// walk is depth-capped like boundLength.
		for depth := 0; depth < 1000 && f != nil && f.Bound != nil; depth++ {
			r = f.Bound.Target
			f = r.Obj()
			if !f.IsCallable() {
				return Undefined, in.Throw("TypeError", "bound target is not callable")
			}
		}
		lo := l.Obj()
		if lo == nil {
			return False, nil
		}
		protoV, err := in.GetMember(r, "prototype")
		if err != nil {
			return Undefined, err
		}
		proto := protoV.Obj()
		for p := lo.Proto; p != nil; p = p.Proto {
			if p == proto {
				return True, nil
			}
		}
		return False, nil
	case "in":
		o := r.Obj()
		if o == nil {
			return Undefined, in.Throw("TypeError", "cannot use 'in' on a non-object")
		}
		key, err := in.ToStringValue(l)
		if err != nil {
			return Undefined, err
		}
		return BoolValue(in.hasProperty(o, key)), nil
	}
	return Undefined, in.Throw("SyntaxError", "unknown binary operator %s", op)
}

// concatStrings builds the concatenation, enforcing the engine's string
// length cap with the RangeError production engines throw — the Value
// representation's 32-bit length field must never see an oversized string.
func (in *Interp) concatStrings(ls, rs string) (Value, error) {
	n := len(ls) + len(rs)
	if n > MaxStringLen {
		return Undefined, in.Throw("RangeError", "Invalid string length")
	}
	// Pre-check: doubling concat in a loop reaches gigabytes in ~30
	// statements, so the meter must refuse the allocation, not bill it
	// after the fact.
	if err := in.checkMem(n); err != nil {
		return Undefined, err
	}
	in.chargeMem(n)
	return StringValue(ls + rs), nil
}

func (in *Interp) hasProperty(o *Object, key string) bool {
	if o.Class == "Array" || o.Class == "Arguments" {
		if i, ok := arrayIndex(key); ok {
			return i < len(o.Elems)
		}
		if key == "length" {
			return true
		}
	}
	holder, _ := in.lookupPath(o, key)
	return holder != nil
}

// RawGet reads a data property without ever invoking a user getter — the
// Stopify getter sub-language's $get prelude invokes accessors itself, as
// instrumented calls, and uses this as its data-property fallback. Accessor
// slots read as undefined. Primitive receivers go through the normal path
// (their prototypes hold only natives).
func (in *Interp) RawGet(base Value, key string) (Value, error) {
	o := base.Obj()
	if o == nil {
		return in.GetMember(base, key)
	}
	// No PropCost charge here: the historical $rawGet native never charged,
	// and the engine cost model must not shift under the getter prelude.
	if o.Class == "Array" || o.Class == "Arguments" {
		if key == "length" && o.Own("length") == nil {
			return NumberValue(float64(len(o.Elems))), nil
		}
		if i, isIdx := arrayIndex(key); isIdx && i < len(o.Elems) {
			return o.Elems[i], nil
		}
	}
	holder, idx := in.lookupPath(o, key)
	if holder == nil {
		if key == "prototype" && o.IsCallable() && o.Bound == nil {
			return in.GetMember(base, key) // materialize the lazy prototype
		}
		return Undefined, nil
	}
	slot := &holder.slots[idx]
	if slot.Getter != nil || slot.Setter != nil {
		return Undefined, nil
	}
	return slot.Value, nil
}

// LookupAccessor walks the prototype chain for a getter (setter false) or
// setter (setter true) without invoking it, for the $get/$set prelude. A
// data property shadows (returns undefined); an accessor lacking the
// requested side is skipped and the walk continues, matching the historical
// behavior of the runtime's $lookupGetter/$lookupSetter natives.
func (in *Interp) LookupAccessor(base Value, key string, setter bool) Value {
	o := base.Obj()
	if o == nil {
		return Undefined
	}
	holder, idx := in.lookupPath(o, key)
	for holder != nil {
		slot := &holder.slots[idx]
		if setter && slot.Setter != nil {
			return ObjectValue(slot.Setter)
		}
		if !setter && slot.Getter != nil {
			return ObjectValue(slot.Getter)
		}
		if slot.Getter == nil && slot.Setter == nil {
			return Undefined // plain data property shadows
		}
		// Accessor lacking the requested side: keep walking from the next
		// prototype up.
		next := holder.Proto
		holder = nil
		for p := next; p != nil; p = p.Proto {
			if i := p.ownOrLazySlot(key); i >= 0 {
				holder, idx = p, i
				break
			}
		}
	}
	return Undefined
}

// getElemFast reads base[idx] for an integer index into an array or
// arguments object, skipping the float → string key → integer round-trip
// (and its allocation) of the generic path. ok is false when the fast path
// does not apply and the caller must fall back to GetMember.
func (in *Interp) getElemFast(base, idx Value) (Value, bool) {
	o := base.Obj()
	if o == nil || (o.Class != "Array" && o.Class != "Arguments") {
		return Undefined, false
	}
	if idx.tag != TagNumber {
		return Undefined, false
	}
	f := idx.num
	i := int(f)
	if float64(i) != f || i < 0 || i >= len(o.Elems) || (i == 0 && math.Signbit(f)) {
		// -0 falls back so the fast and string-key paths always agree on
		// which property it names, regardless of array length.
		return Undefined, false
	}
	in.charge(in.Engine.PropCost)
	return o.Elems[i], true
}

// setElemFast writes base[idx] = v for an integer index into an array,
// mirroring SetMember's element semantics (including growth) without the
// string key. Indexes at or beyond 2^31 and arguments-object writes past
// the end take the generic path, whose property-versus-element behavior
// differs.
func (in *Interp) setElemFast(base, idx, v Value) bool {
	o := base.Obj()
	if o == nil || (o.Class != "Array" && o.Class != "Arguments") {
		return false
	}
	if idx.tag != TagNumber {
		return false
	}
	f := idx.num
	i := int(f)
	if float64(i) != f || i < 0 || i >= 1<<31 || (i == 0 && math.Signbit(f)) {
		return false
	}
	if i >= len(o.Elems) {
		if o.Class == "Arguments" {
			return false // becomes an ordinary property; length unchanged
		}
		grow := i + 1 - len(o.Elems)
		if in.checkMem(grow*memValueBytes) != nil {
			// Over budget: decline the fast path and let setMemberSite's
			// growth pre-check surface ErrMemLimit.
			return false
		}
		in.chargeMem(grow * memValueBytes)
		for len(o.Elems) <= i {
			o.Elems = append(o.Elems, Undefined)
		}
	}
	in.charge(in.Engine.PropCost)
	o.Elems[i] = v
	return true
}

// GetMember reads base[key], invoking getters and routing primitive
// receivers to their builtin prototypes.
func (in *Interp) GetMember(base Value, key string) (Value, error) {
	return in.getMemberSite(base, key, 0)
}

// getMemberSite is GetMember with an inline-cache site (0 disables
// caching); non-computed member reads call it with the site internal/
// resolve assigned to their ast.Member node.
func (in *Interp) getMemberSite(base Value, key string, site uint32) (Value, error) {
	in.charge(in.Engine.PropCost)
	switch base.tag {
	case TagObject:
		return in.objGetSite(base.Obj(), base, key, site)
	case TagString:
		s := base.Str()
		if key == "length" {
			return NumberValue(float64(len(s))), nil
		}
		if i, ok := arrayIndex(key); ok {
			if i < len(s) {
				return StringValue(charView(s, i)), nil
			}
			return Undefined, nil
		}
		return in.protoGet(in.stringProto, base, key)
	case TagNumber:
		return in.protoGet(in.numberProto, base, key)
	case TagBool:
		return in.protoGet(in.booleanProto, base, key)
	case TagUndefined:
		return Undefined, in.Throw("TypeError", "cannot read property %q of undefined", key)
	case TagNull:
		return Undefined, in.Throw("TypeError", "cannot read property %q of null", key)
	}
	return Undefined, nil
}

func (in *Interp) protoGet(proto *Object, this Value, key string) (Value, error) {
	for p := proto; p != nil; p = p.Proto {
		if slot := p.Own(key); slot != nil {
			if slot.Getter != nil {
				return in.Call(ObjectValue(slot.Getter), this, nil, Undefined)
			}
			return slot.Value, nil
		}
	}
	return Undefined, nil
}

func (in *Interp) objGet(o *Object, this Value, key string) (Value, error) {
	return in.objGetSite(o, this, key, 0)
}

// objGetSite reads o[key] with an optional inline cache. A cache hit is a
// shape compare (plus, for prototype-chain hits, a holder-shape compare and
// an epoch check) followed by a direct slot read — no hash lookups. Class-
// special properties (array length and elements) never enter the cache;
// their pre-checks run first, exactly as the uncached walk always has.
func (in *Interp) objGetSite(o *Object, this Value, key string, site uint32) (Value, error) {
	if o.Class == "Array" || o.Class == "Arguments" {
		if key == "length" {
			if o.Own("length") == nil { // arrays expose length natively
				return NumberValue(float64(len(o.Elems))), nil
			}
		}
		if i, ok := arrayIndex(key); ok {
			if i < len(o.Elems) {
				return o.Elems[i], nil
			}
			// fall through to props for sparse writes beyond Elems
		}
	}
	var c *getIC
	if site != 0 {
		shape := o.ensureShape()
		c = in.icGetAt(site)
		if c.shape == shape {
			var p *Prop
			if c.holder == nil {
				p = &o.slots[c.slot]
			} else if c.holder.shape == c.hshape && c.epoch == protoEpoch.Load() {
				p = &c.holder.slots[c.slot]
			}
			if p != nil {
				if p.Getter != nil {
					return in.Call(ObjectValue(p.Getter), this, nil, Undefined)
				}
				if p.Setter != nil {
					return Undefined, nil
				}
				return p.Value, nil
			}
		}
	}
	holder, idx := in.lookupPath(o, key)
	if holder == nil {
		// Functions materialize .prototype on first access (.length is
		// handled by the lazy slot probe inside the walk), so closure
		// creation allocates no property storage. Like .prototype, a
		// deleted .length resurfaces on the next inspection; this substrate
		// does not model configurability of builtin function properties.
		// Bound functions are excluded: per spec they have no .prototype
		// own property, and `new boundFn()` consults the target's instead.
		if key == "prototype" && o.IsCallable() && o.Bound == nil {
			proto := in.NewPlainObject()
			proto.SetHidden("constructor", ObjectValue(o))
			o.SetHidden("prototype", ObjectValue(proto))
			return ObjectValue(proto), nil
		}
		return Undefined, nil
	}
	if c != nil {
		if holder == o {
			*c = getIC{shape: o.shape, slot: int32(idx)}
		} else {
			*c = getIC{shape: o.shape, holder: holder, hshape: holder.shape,
				slot: int32(idx), epoch: protoEpoch.Load()}
		}
	}
	slot := &holder.slots[idx]
	if slot.Getter != nil {
		return in.Call(ObjectValue(slot.Getter), this, nil, Undefined)
	}
	if slot.Setter != nil {
		return Undefined, nil
	}
	return slot.Value, nil
}

// SetMember writes base[key] = v, invoking setters found on the prototype
// chain.
func (in *Interp) SetMember(base Value, key string, v Value) error {
	return in.setMemberSite(base, key, v, 0)
}

// setMemberSite is SetMember with an inline-cache site (0 disables
// caching). Two write kinds cache: overwriting an existing own data
// property (shape + slot), and adding a new property (a shape transition:
// old shape → new shape, value appended; guarded by protoEpoch so an
// accessor appearing anywhere on the chain invalidates the shortcut).
func (in *Interp) setMemberSite(base Value, key string, v Value, site uint32) error {
	in.charge(in.Engine.PropCost)
	o := base.Obj()
	if o == nil {
		switch base.tag {
		case TagUndefined:
			return in.Throw("TypeError", "cannot set property %q of undefined", key)
		case TagNull:
			return in.Throw("TypeError", "cannot set property %q of null", key)
		}
		return nil // writes to other primitives are silently dropped
	}
	if o.Class == "Array" || o.Class == "Arguments" {
		if i, ok := arrayIndex(key); ok {
			if o.Class == "Arguments" && i >= len(o.Elems) {
				// Writing past the end of an arguments object creates an
				// ordinary property; its length never changes.
				in.chargeMem(memPropBytes + len(key))
				o.SetOwn(key, v)
				return nil
			}
			if grow := i + 1 - len(o.Elems); grow > 0 {
				// Pre-check: `a[2e9] = 1` is a one-statement multi-gigabyte
				// allocation, so refuse before growing, not after.
				if err := in.checkMem(grow * memValueBytes); err != nil {
					return err
				}
				in.chargeMem(grow * memValueBytes)
			}
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems[i] = v
			return nil
		}
		if key == "length" && o.Class == "Array" {
			n, err := in.ToNumber(v)
			if err != nil {
				return err
			}
			size := int(n)
			if size < 0 {
				return in.Throw("RangeError", "invalid array length")
			}
			if grow := size - len(o.Elems); grow > 0 {
				// Same pre-check as indexed growth: `a.length = 1e9` must die
				// by policy, not host OOM.
				if err := in.checkMem(grow * memValueBytes); err != nil {
					return err
				}
				in.chargeMem(grow * memValueBytes)
			}
			for len(o.Elems) < size {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems = o.Elems[:size]
			return nil
		}
	}
	var c *setIC
	if site != 0 {
		shape := o.ensureShape()
		c = in.icSetAt(site)
		if c.shape == shape {
			if c.next == nil {
				// Existing own data property. Data-ness is shape-stable:
				// transition edges encode property kind, so an object with
				// an accessor at this key can never share this shape.
				o.slots[c.slot].Value = v
				return nil
			}
			if c.epoch == protoEpoch.Load() {
				in.chargeMem(memPropBytes + len(key))
				o.slots = append(o.slots, Prop{Value: v, Enumerable: true})
				o.shape = c.next
				if o.usedAsProto {
					// Same obligation as the slow path (setSlot): a new key
					// on a prototype can shadow a cached chain hit.
					bumpProtoEpoch()
				}
				return nil
			}
		}
	}
	if holder, idx := in.lookupPath(o, key); holder != nil {
		slot := &holder.slots[idx]
		if slot.Setter != nil {
			_, err := in.Call(ObjectValue(slot.Setter), base, []Value{v}, Undefined)
			return err
		}
		if slot.Getter != nil {
			return nil // getter-only property: silent failure (sloppy mode)
		}
		if holder == o {
			if c != nil {
				*c = setIC{shape: o.shape, slot: int32(idx)}
			}
			slot.Value = v
			return nil
		}
		// Data property on the chain: shadow it below.
	}
	// Reaching here means key is not an own property of o (an own data hit
	// returned above), so SetOwn appends a new slot: charge it.
	in.chargeMem(memPropBytes + len(key))
	oldShape := o.shape
	o.SetOwn(key, v)
	if c != nil && oldShape != nil {
		*c = setIC{shape: oldShape, next: o.shape,
			slot: int32(len(oldShape.keys)), epoch: protoEpoch.Load()}
	}
	return nil
}
