package interp

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/printer"
)

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch o := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "object"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Object:
		if o.IsCallable() {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// Pre-boxed typeof results: converting a string constant to an interface
// allocates its header, and typeof runs in every instrumented dispatch
// guard, so the evaluator returns these interned boxes instead.
var (
	typeofUndefined Value = "undefined"
	typeofObject    Value = "object"
	typeofBoolean   Value = "boolean"
	typeofNumber    Value = "number"
	typeofString    Value = "string"
	typeofFunction  Value = "function"
)

// typeOfValue is TypeOf returning an interned boxed Value.
func typeOfValue(v Value) Value {
	switch o := v.(type) {
	case Undefined:
		return typeofUndefined
	case Null:
		return typeofObject
	case bool:
		return typeofBoolean
	case float64:
		return typeofNumber
	case string:
		return typeofString
	case *Object:
		if o.IsCallable() {
			return typeofFunction
		}
		return typeofObject
	}
	return typeofUndefined
}

// ToBoolean implements JS truthiness.
func ToBoolean(v Value) bool {
	switch x := v.(type) {
	case Undefined, Null:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case *Object:
		return true
	}
	return false
}

// ToNumber implements JS numeric coercion; objects go through ToPrimitive,
// which may run user valueOf/toString code.
func (in *Interp) ToNumber(v Value) (float64, error) {
	switch x := v.(type) {
	case Undefined:
		return math.NaN(), nil
	case Null:
		return 0, nil
	case bool:
		if x {
			return 1, nil
		}
		return 0, nil
	case float64:
		return x, nil
	case string:
		return stringToNumber(x), nil
	case *Object:
		prim, err := in.ToPrimitive(v, "number")
		if err != nil {
			return 0, err
		}
		return in.ToNumber(prim)
	}
	return math.NaN(), nil
}

func stringToNumber(s string) float64 {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0
	}
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		if u, err := strconv.ParseUint(t[2:], 16, 64); err == nil {
			return float64(u)
		}
		return math.NaN()
	}
	if t == "Infinity" || t == "+Infinity" {
		return math.Inf(1)
	}
	if t == "-Infinity" {
		return math.Inf(-1)
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// ToStringValue implements JS string coercion; objects go through
// ToPrimitive with a string hint.
func (in *Interp) ToStringValue(v Value) (string, error) {
	switch x := v.(type) {
	case Undefined:
		return "undefined", nil
	case Null:
		return "null", nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	case float64:
		return printer.FormatNumber(x), nil
	case string:
		return x, nil
	case *Object:
		prim, err := in.ToPrimitive(v, "string")
		if err != nil {
			return "", err
		}
		if _, isObj := prim.(*Object); isObj {
			return "", in.Throw("TypeError", "cannot convert object to primitive value")
		}
		return in.ToStringValue(prim)
	}
	return "", nil
}

// ToPrimitive converts an object by calling its valueOf/toString methods —
// the implicit calls of §4.1 that can hide infinite loops. Primitives pass
// through unchanged.
func (in *Interp) ToPrimitive(v Value, hint string) (Value, error) {
	o, ok := v.(*Object)
	if !ok {
		return v, nil
	}
	methods := []string{"valueOf", "toString"}
	if hint == "string" {
		methods = []string{"toString", "valueOf"}
	}
	in.EnterAtomic()
	defer in.ExitAtomic()
	for _, name := range methods {
		m, err := in.GetMember(o, name)
		if err != nil {
			return nil, err
		}
		if f, ok := m.(*Object); ok && f.IsCallable() {
			r, err := in.Call(f, o, nil, Undefined{})
			if err != nil {
				return nil, err
			}
			if _, isObj := r.(*Object); !isObj {
				return r, nil
			}
		}
	}
	return nil, in.Throw("TypeError", "cannot convert object to primitive value")
}

// ToInt32 and ToUint32 implement the bitwise-operator coercions. The
// reduction must go through math.Mod, not int64: for |f| ≥ 2^63 the
// float→int64 conversion is out of range (undefined result, 0 in practice),
// which made 1e20|0 and 1e20>>>0 return 0 instead of 1661992960.
func ToInt32(f float64) int32 {
	return int32(ToUint32(f))
}

// ToUint32 truncates to an unsigned 32-bit integer per ES5 §9.6: truncate,
// reduce modulo 2^32, normalize into [0, 2^32).
func ToUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	const two32 = 4294967296
	f = math.Mod(math.Trunc(f), two32)
	if f < 0 {
		f += two32
	}
	return uint32(f)
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	switch x := a.(type) {
	case Undefined:
		_, ok := b.(Undefined)
		return ok
	case Null:
		_, ok := b.(Null)
		return ok
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y // NaN != NaN falls out of Go's float compare
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *Object:
		y, ok := b.(*Object)
		return ok && x == y
	}
	return false
}

// looseEquals implements ==.
func (in *Interp) looseEquals(a, b Value) (bool, error) {
	ta, tb := TypeOf(a), TypeOf(b)
	_, aNull := a.(Null)
	_, bNull := b.(Null)
	aUndef := ta == "undefined"
	bUndef := tb == "undefined"
	// typeof null is "object"; normalize for the algorithm below.
	switch {
	case (aNull || aUndef) && (bNull || bUndef):
		return true, nil
	case aNull || aUndef || bNull || bUndef:
		return false, nil
	}
	if ta == tb && ta != "object" && ta != "function" {
		return StrictEquals(a, b), nil
	}
	ao, aIsObj := a.(*Object)
	bo, bIsObj := b.(*Object)
	switch {
	case aIsObj && bIsObj:
		return ao == bo, nil
	case aIsObj:
		prim, err := in.ToPrimitive(a, "default")
		if err != nil {
			return false, err
		}
		return in.looseEquals(prim, b)
	case bIsObj:
		prim, err := in.ToPrimitive(b, "default")
		if err != nil {
			return false, err
		}
		return in.looseEquals(a, prim)
	}
	// Mixed primitives: compare numerically, except bool normalization.
	an, err := in.ToNumber(a)
	if err != nil {
		return false, err
	}
	bn, err := in.ToNumber(b)
	if err != nil {
		return false, err
	}
	return an == bn, nil
}

// applyBinary implements the binary operators.
func (in *Interp) applyBinary(op string, l, r Value) (Value, error) {
	switch op {
	case "+":
		lp, err := in.ToPrimitive(l, "default")
		if err != nil {
			return nil, err
		}
		rp, err := in.ToPrimitive(r, "default")
		if err != nil {
			return nil, err
		}
		_, lStr := lp.(string)
		_, rStr := rp.(string)
		if lStr || rStr {
			ls, err := in.ToStringValue(lp)
			if err != nil {
				return nil, err
			}
			rs, err := in.ToStringValue(rp)
			if err != nil {
				return nil, err
			}
			return ls + rs, nil
		}
		ln, err := in.ToNumber(lp)
		if err != nil {
			return nil, err
		}
		rn, err := in.ToNumber(rp)
		if err != nil {
			return nil, err
		}
		return boxNumber(ln + rn), nil
	case "-", "*", "/", "%", "**":
		ln, err := in.ToNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return nil, err
		}
		switch op {
		case "-":
			return boxNumber(ln - rn), nil
		case "*":
			return boxNumber(ln * rn), nil
		case "/":
			return boxNumber(ln / rn), nil
		case "%":
			return boxNumber(math.Mod(ln, rn)), nil
		default:
			return boxNumber(math.Pow(ln, rn)), nil
		}
	case "<", ">", "<=", ">=":
		lp, err := in.ToPrimitive(l, "number")
		if err != nil {
			return nil, err
		}
		rp, err := in.ToPrimitive(r, "number")
		if err != nil {
			return nil, err
		}
		ls, lStr := lp.(string)
		rs, rStr := rp.(string)
		if lStr && rStr {
			switch op {
			case "<":
				return ls < rs, nil
			case ">":
				return ls > rs, nil
			case "<=":
				return ls <= rs, nil
			default:
				return ls >= rs, nil
			}
		}
		ln, err := in.ToNumber(lp)
		if err != nil {
			return nil, err
		}
		rn, err := in.ToNumber(rp)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(ln) || math.IsNaN(rn) {
			return false, nil
		}
		switch op {
		case "<":
			return ln < rn, nil
		case ">":
			return ln > rn, nil
		case "<=":
			return ln <= rn, nil
		default:
			return ln >= rn, nil
		}
	case "==":
		return in.looseEquals(l, r)
	case "!=":
		eq, err := in.looseEquals(l, r)
		return !eq, err
	case "===":
		return StrictEquals(l, r), nil
	case "!==":
		return !StrictEquals(l, r), nil
	case "&", "|", "^", "<<", ">>":
		ln, err := in.ToNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return nil, err
		}
		li := ToInt32(ln)
		ri := ToInt32(rn)
		switch op {
		case "&":
			return boxNumber(float64(li & ri)), nil
		case "|":
			return boxNumber(float64(li | ri)), nil
		case "^":
			return boxNumber(float64(li ^ ri)), nil
		case "<<":
			return boxNumber(float64(li << (uint32(ri) & 31))), nil
		default:
			return boxNumber(float64(li >> (uint32(ri) & 31))), nil
		}
	case ">>>":
		ln, err := in.ToNumber(l)
		if err != nil {
			return nil, err
		}
		rn, err := in.ToNumber(r)
		if err != nil {
			return nil, err
		}
		return boxNumber(float64(ToUint32(ln) >> (ToUint32(rn) & 31))), nil
	case "instanceof":
		f, ok := r.(*Object)
		if !ok || !f.IsCallable() {
			return nil, in.Throw("TypeError", "right-hand side of instanceof is not callable")
		}
		lo, ok := l.(*Object)
		if !ok {
			return false, nil
		}
		protoV, err := in.GetMember(f, "prototype")
		if err != nil {
			return nil, err
		}
		proto, _ := protoV.(*Object)
		for p := lo.Proto; p != nil; p = p.Proto {
			if p == proto {
				return true, nil
			}
		}
		return false, nil
	case "in":
		o, ok := r.(*Object)
		if !ok {
			return nil, in.Throw("TypeError", "cannot use 'in' on a non-object")
		}
		key, err := in.ToStringValue(l)
		if err != nil {
			return nil, err
		}
		return in.hasProperty(o, key), nil
	}
	return nil, in.Throw("SyntaxError", "unknown binary operator %s", op)
}

func (in *Interp) hasProperty(o *Object, key string) bool {
	if o.Class == "Array" || o.Class == "Arguments" {
		if i, ok := arrayIndex(key); ok {
			return i < len(o.Elems)
		}
		if key == "length" {
			return true
		}
	}
	holder, _ := in.lookupPath(o, key)
	return holder != nil
}

// RawGet reads a data property without ever invoking a user getter — the
// Stopify getter sub-language's $get prelude invokes accessors itself, as
// instrumented calls, and uses this as its data-property fallback. Accessor
// slots read as undefined. Primitive receivers go through the normal path
// (their prototypes hold only natives).
func (in *Interp) RawGet(base Value, key string) (Value, error) {
	o, ok := base.(*Object)
	if !ok {
		return in.GetMember(base, key)
	}
	// No PropCost charge here: the historical $rawGet native never charged,
	// and the engine cost model must not shift under the getter prelude.
	if o.Class == "Array" || o.Class == "Arguments" {
		if key == "length" && o.Own("length") == nil {
			return boxNumber(float64(len(o.Elems))), nil
		}
		if i, isIdx := arrayIndex(key); isIdx && i < len(o.Elems) {
			return o.Elems[i], nil
		}
	}
	holder, idx := in.lookupPath(o, key)
	if holder == nil {
		if key == "prototype" && o.IsCallable() {
			return in.GetMember(o, key) // materialize the lazy prototype
		}
		return Undefined{}, nil
	}
	slot := &holder.slots[idx]
	if slot.Getter != nil || slot.Setter != nil {
		return Undefined{}, nil
	}
	return slot.Value, nil
}

// LookupAccessor walks the prototype chain for a getter (setter false) or
// setter (setter true) without invoking it, for the $get/$set prelude. A
// data property shadows (returns undefined); an accessor lacking the
// requested side is skipped and the walk continues, matching the historical
// behavior of the runtime's $lookupGetter/$lookupSetter natives.
func (in *Interp) LookupAccessor(base Value, key string, setter bool) Value {
	o, ok := base.(*Object)
	if !ok {
		return Undefined{}
	}
	holder, idx := in.lookupPath(o, key)
	for holder != nil {
		slot := &holder.slots[idx]
		if setter && slot.Setter != nil {
			return slot.Setter
		}
		if !setter && slot.Getter != nil {
			return slot.Getter
		}
		if slot.Getter == nil && slot.Setter == nil {
			return Undefined{} // plain data property shadows
		}
		// Accessor lacking the requested side: keep walking from the next
		// prototype up.
		next := holder.Proto
		holder = nil
		for p := next; p != nil; p = p.Proto {
			if i := p.ownOrLazySlot(key); i >= 0 {
				holder, idx = p, i
				break
			}
		}
	}
	return Undefined{}
}

// getElemFast reads base[idx] for an integer index into an array or
// arguments object, skipping the float → string key → integer round-trip
// (and its allocation) of the generic path. ok is false when the fast path
// does not apply and the caller must fall back to GetMember.
func (in *Interp) getElemFast(base, idx Value) (Value, bool) {
	o, isObj := base.(*Object)
	if !isObj || (o.Class != "Array" && o.Class != "Arguments") {
		return nil, false
	}
	f, isNum := idx.(float64)
	if !isNum {
		return nil, false
	}
	i := int(f)
	if float64(i) != f || i < 0 || i >= len(o.Elems) || (i == 0 && math.Signbit(f)) {
		// -0 falls back so the fast and string-key paths always agree on
		// which property it names, regardless of array length.
		return nil, false
	}
	in.charge(in.Engine.PropCost)
	return o.Elems[i], true
}

// setElemFast writes base[idx] = v for an integer index into an array,
// mirroring SetMember's element semantics (including growth) without the
// string key. Indexes at or beyond 2^31 and arguments-object writes past
// the end take the generic path, whose property-versus-element behavior
// differs.
func (in *Interp) setElemFast(base, idx, v Value) bool {
	o, isObj := base.(*Object)
	if !isObj || (o.Class != "Array" && o.Class != "Arguments") {
		return false
	}
	f, isNum := idx.(float64)
	if !isNum {
		return false
	}
	i := int(f)
	if float64(i) != f || i < 0 || i >= 1<<31 || (i == 0 && math.Signbit(f)) {
		return false
	}
	if i >= len(o.Elems) {
		if o.Class == "Arguments" {
			return false // becomes an ordinary property; length unchanged
		}
		for len(o.Elems) <= i {
			o.Elems = append(o.Elems, Undefined{})
		}
	}
	in.charge(in.Engine.PropCost)
	o.Elems[i] = v
	return true
}

// GetMember reads base[key], invoking getters and routing primitive
// receivers to their builtin prototypes.
func (in *Interp) GetMember(base Value, key string) (Value, error) {
	return in.getMemberSite(base, key, 0)
}

// getMemberSite is GetMember with an inline-cache site (0 disables
// caching); non-computed member reads call it with the site internal/
// resolve assigned to their ast.Member node.
func (in *Interp) getMemberSite(base Value, key string, site uint32) (Value, error) {
	in.charge(in.Engine.PropCost)
	switch b := base.(type) {
	case *Object:
		return in.objGetSite(b, b, key, site)
	case string:
		if key == "length" {
			return boxNumber(float64(len(b))), nil
		}
		if i, ok := arrayIndex(key); ok {
			if i < len(b) {
				return string(b[i]), nil
			}
			return Undefined{}, nil
		}
		return in.protoGet(in.stringProto, base, key)
	case float64:
		return in.protoGet(in.numberProto, base, key)
	case bool:
		return in.protoGet(in.booleanProto, base, key)
	case Undefined:
		return nil, in.Throw("TypeError", "cannot read property %q of undefined", key)
	case Null:
		return nil, in.Throw("TypeError", "cannot read property %q of null", key)
	}
	return Undefined{}, nil
}

func (in *Interp) protoGet(proto *Object, this Value, key string) (Value, error) {
	for p := proto; p != nil; p = p.Proto {
		if slot := p.Own(key); slot != nil {
			if slot.Getter != nil {
				return in.Call(slot.Getter, this, nil, Undefined{})
			}
			return slot.Value, nil
		}
	}
	return Undefined{}, nil
}

func (in *Interp) objGet(o *Object, this Value, key string) (Value, error) {
	return in.objGetSite(o, this, key, 0)
}

// objGetSite reads o[key] with an optional inline cache. A cache hit is a
// shape compare (plus, for prototype-chain hits, a holder-shape compare and
// an epoch check) followed by a direct slot read — no hash lookups. Class-
// special properties (array length and elements) never enter the cache;
// their pre-checks run first, exactly as the uncached walk always has.
func (in *Interp) objGetSite(o *Object, this Value, key string, site uint32) (Value, error) {
	if o.Class == "Array" || o.Class == "Arguments" {
		if key == "length" {
			if o.Own("length") == nil { // arrays expose length natively
				return boxNumber(float64(len(o.Elems))), nil
			}
		}
		if i, ok := arrayIndex(key); ok {
			if i < len(o.Elems) {
				return o.Elems[i], nil
			}
			// fall through to props for sparse writes beyond Elems
		}
	}
	var c *getIC
	if site != 0 {
		shape := o.ensureShape()
		c = in.icGetAt(site)
		if c.shape == shape {
			var p *Prop
			if c.holder == nil {
				p = &o.slots[c.slot]
			} else if c.holder.shape == c.hshape && c.epoch == protoEpoch.Load() {
				p = &c.holder.slots[c.slot]
			}
			if p != nil {
				if p.Getter != nil {
					return in.Call(p.Getter, this, nil, Undefined{})
				}
				if p.Setter != nil {
					return undefinedValue, nil
				}
				return p.Value, nil
			}
		}
	}
	holder, idx := in.lookupPath(o, key)
	if holder == nil {
		// Functions materialize .prototype on first access (.length is
		// handled by the lazy slot probe inside the walk), so closure
		// creation allocates no property storage. Like .prototype, a
		// deleted .length resurfaces on the next inspection; this substrate
		// does not model configurability of builtin function properties.
		if key == "prototype" && o.IsCallable() {
			proto := in.NewPlainObject()
			proto.SetHidden("constructor", o)
			o.SetHidden("prototype", proto)
			return proto, nil
		}
		return Undefined{}, nil
	}
	if c != nil {
		if holder == o {
			*c = getIC{shape: o.shape, slot: int32(idx)}
		} else {
			*c = getIC{shape: o.shape, holder: holder, hshape: holder.shape,
				slot: int32(idx), epoch: protoEpoch.Load()}
		}
	}
	slot := &holder.slots[idx]
	if slot.Getter != nil {
		return in.Call(slot.Getter, this, nil, Undefined{})
	}
	if slot.Setter != nil {
		return Undefined{}, nil
	}
	return slot.Value, nil
}

// SetMember writes base[key] = v, invoking setters found on the prototype
// chain.
func (in *Interp) SetMember(base Value, key string, v Value) error {
	return in.setMemberSite(base, key, v, 0)
}

// setMemberSite is SetMember with an inline-cache site (0 disables
// caching). Two write kinds cache: overwriting an existing own data
// property (shape + slot), and adding a new property (a shape transition:
// old shape → new shape, value appended; guarded by protoEpoch so an
// accessor appearing anywhere on the chain invalidates the shortcut).
func (in *Interp) setMemberSite(base Value, key string, v Value, site uint32) error {
	in.charge(in.Engine.PropCost)
	o, ok := base.(*Object)
	if !ok {
		switch base.(type) {
		case Undefined:
			return in.Throw("TypeError", "cannot set property %q of undefined", key)
		case Null:
			return in.Throw("TypeError", "cannot set property %q of null", key)
		}
		return nil // writes to other primitives are silently dropped
	}
	if o.Class == "Array" || o.Class == "Arguments" {
		if i, ok := arrayIndex(key); ok {
			if o.Class == "Arguments" && i >= len(o.Elems) {
				// Writing past the end of an arguments object creates an
				// ordinary property; its length never changes.
				o.SetOwn(key, v)
				return nil
			}
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, Undefined{})
			}
			o.Elems[i] = v
			return nil
		}
		if key == "length" && o.Class == "Array" {
			n, err := in.ToNumber(v)
			if err != nil {
				return err
			}
			size := int(n)
			if size < 0 {
				return in.Throw("RangeError", "invalid array length")
			}
			for len(o.Elems) < size {
				o.Elems = append(o.Elems, Undefined{})
			}
			o.Elems = o.Elems[:size]
			return nil
		}
	}
	var c *setIC
	if site != 0 {
		shape := o.ensureShape()
		c = in.icSetAt(site)
		if c.shape == shape {
			if c.next == nil {
				// Existing own data property. Data-ness is shape-stable:
				// transition edges encode property kind, so an object with
				// an accessor at this key can never share this shape.
				o.slots[c.slot].Value = v
				return nil
			}
			if c.epoch == protoEpoch.Load() {
				o.slots = append(o.slots, Prop{Value: v, Enumerable: true})
				o.shape = c.next
				if o.usedAsProto {
					// Same obligation as the slow path (setSlot): a new key
					// on a prototype can shadow a cached chain hit.
					bumpProtoEpoch()
				}
				return nil
			}
		}
	}
	if holder, idx := in.lookupPath(o, key); holder != nil {
		slot := &holder.slots[idx]
		if slot.Setter != nil {
			_, err := in.Call(slot.Setter, o, []Value{v}, Undefined{})
			return err
		}
		if slot.Getter != nil {
			return nil // getter-only property: silent failure (sloppy mode)
		}
		if holder == o {
			if c != nil {
				*c = setIC{shape: o.shape, slot: int32(idx)}
			}
			slot.Value = v
			return nil
		}
		// Data property on the chain: shadow it below.
	}
	oldShape := o.shape
	o.SetOwn(key, v)
	if c != nil && oldShape != nil {
		*c = setIC{shape: oldShape, next: o.shape,
			slot: int32(len(oldShape.keys)), epoch: protoEpoch.Load()}
	}
	return nil
}
