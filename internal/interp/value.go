// Package interp is the JavaScript engine substrate: a tree-walking
// interpreter for the subset defined in internal/ast, with the semantics
// Stopify's transformations depend on — prototype chains, closures, the
// arguments object, getters and setters, implicit valueOf/toString
// conversions, try/catch/finally, constructors with new.target, and a
// browser-like native stack limit.
//
// The interpreter plays the role of V8/Chakra/SpiderMonkey/JavaScriptCore in
// the paper's evaluation. It charges work units through an engine.Profile so
// that the browser-specific cost asymmetries (Figure 2b, Figure 11) are
// reproducible, and it is deliberately not a JIT: the paper's results are
// relative slowdowns, which survive a uniformly slower engine (DESIGN.md §1).
package interp

import (
	"fmt"
	"strconv"
	"unsafe"

	"repro/internal/ast"
	"repro/internal/printer"
)

// Tag discriminates the payload of a Value.
type Tag uint8

// Value tags. TagUndefined is deliberately the zero tag so that the zero
// Value is JavaScript's undefined — never-written environment slots, cleared
// arena entries, and freshly grown operand stacks all read back correctly
// without an explicit fill.
const (
	TagUndefined Tag = iota
	TagNull
	TagBool
	TagNumber
	TagString
	TagObject

	// tagIter and tagCtor are engine-internal: a reified for-in iterator
	// living on the bytecode operand stack, and the sentinel `this` that
	// marks a native constructor call. Neither ever escapes to user code,
	// so the public predicates and conversions treat them as undefined.
	tagIter
	tagCtor
)

// Value is a JavaScript value in a struct-tagged, unboxed representation.
// Numbers, booleans, undefined, and null are carried entirely inline;
// strings are carried as a (data pointer, length) pair into the original Go
// string's bytes; objects are a single pointer. Nothing in this struct ever
// forces a heap allocation: passing a float64 or a string through a Value is
// free, which is what the interface{} representation it replaces could not
// provide (every non-interned float64 or string conversion heap-allocated a
// box).
//
// Layout (24 bytes): num carries the float64 payload for TagNumber and the
// 0/1 payload for TagBool; ptr carries the *Object for TagObject and the
// string data pointer for TagString; slen carries the string byte length.
// The GC scans ptr as an ordinary pointer, so the string backing array or
// object stays live for exactly as long as the Value does.
//
// Values must be compared with StrictEquals / SameValue, never with ==: a Go
// == on the struct would compare string payloads by pointer identity and
// NaNs bitwise, neither of which is a JavaScript equality.
type Value struct {
	num  float64
	ptr  unsafe.Pointer
	slen int32
	tag  Tag
}

// Interned singleton Values. These are package variables rather than
// constructor calls at use sites purely for readability; constructing the
// equivalent Value inline costs the same (nothing).
var (
	Undefined = Value{}
	Null      = Value{tag: TagNull}
	True      = Value{tag: TagBool, num: 1}
	False     = Value{tag: TagBool}
)

// NumberValue carries a float64 unboxed. The sign of -0 and the single
// canonical NaN are preserved exactly as Go represents them; no interning
// table is consulted — the representation itself is the fast path.
func NumberValue(f float64) Value {
	return Value{tag: TagNumber, num: f}
}

// MaxStringLen is the engine's maximum string length in bytes (1 GiB, in
// line with production engines' caps). Growth paths (concatenation,
// repeat) throw a RangeError beyond it; the limit also keeps every legal
// string length inside Value's 32-bit length field.
const MaxStringLen = 1 << 30

// StringValue carries a Go string unboxed: the Value aliases the string's
// bytes (data pointer + length), so no copy and no allocation happen here
// or on the way back out through Str. Strings beyond MaxStringLen cannot
// be represented; the growth paths enforce the cap with a JS RangeError
// before ever constructing one, so the panic here is a tripwire for
// engine bugs, not a reachable guest-code outcome.
func StringValue(s string) Value {
	if len(s) > MaxStringLen {
		panic("interp: string exceeds MaxStringLen (missing RangeError guard on a growth path)")
	}
	return Value{tag: TagString, ptr: unsafe.Pointer(unsafe.StringData(s)), slen: int32(len(s))}
}

// BoolValue returns True or False.
func BoolValue(b bool) Value {
	if b {
		return True
	}
	return False
}

// ObjectValue wraps an object pointer. A nil *Object becomes undefined so
// lookup helpers can return their zero result directly.
func ObjectValue(o *Object) Value {
	if o == nil {
		return Undefined
	}
	return Value{tag: TagObject, ptr: unsafe.Pointer(o)}
}

// Tag returns the value's tag.
func (v Value) Tag() Tag { return v.tag }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.tag == TagUndefined }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.tag == TagNull }

// IsNullish reports whether v is undefined or null.
func (v Value) IsNullish() bool { return v.tag == TagUndefined || v.tag == TagNull }

// IsNumber reports whether v is a number.
func (v Value) IsNumber() bool { return v.tag == TagNumber }

// IsString reports whether v is a string.
func (v Value) IsString() bool { return v.tag == TagString }

// IsBool reports whether v is a boolean.
func (v Value) IsBool() bool { return v.tag == TagBool }

// IsObject reports whether v is an object.
func (v Value) IsObject() bool { return v.tag == TagObject }

// Num returns the float64 payload. Only meaningful for TagNumber (callers
// check the tag first; the engine never calls it blind).
func (v Value) Num() float64 { return v.num }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.num != 0 }

// Str reconstructs the Go string a TagString value carries. The returned
// string shares the original backing bytes; no copy is made.
func (v Value) Str() string {
	if v.slen == 0 {
		return ""
	}
	return unsafe.String((*byte)(v.ptr), int(v.slen))
}

// Obj returns the object payload, or nil when v is not an object — so
// `if o := v.Obj(); o != nil` is the tagged replacement for the old
// two-value type assertion.
func (v Value) Obj() *Object {
	if v.tag != TagObject {
		return nil
	}
	return (*Object)(v.ptr)
}

// sameString reports payload equality of two TagString values, using
// pointer+length identity as the fast path before comparing bytes.
func sameString(a, b Value) bool {
	if a.slen != b.slen {
		return false
	}
	if a.ptr == b.ptr {
		return true
	}
	return a.Str() == b.Str()
}

// ctorSentinel marks native calls that originate from `new` (Construct
// passes it as `this`). It never escapes: every native either checks it or
// ignores its receiver.
var ctorSentinel = Value{tag: tagCtor}

func isCtorSentinel(v Value) bool { return v.tag == tagCtor }

// ---------------------------------------------------------------------------
// Embedding-API conversion boundary
// ---------------------------------------------------------------------------

// FromGo converts a Go value into a Value at the embedding boundary. It
// accepts the Go types that hosts naturally produce; anything else becomes
// undefined. Hot engine paths never call it — they construct tagged Values
// directly.
func FromGo(x interface{}) Value {
	switch t := x.(type) {
	case nil:
		return Null
	case Value:
		return t
	case bool:
		return BoolValue(t)
	case float64:
		return NumberValue(t)
	case float32:
		return NumberValue(float64(t))
	case int:
		return NumberValue(float64(t))
	case int32:
		return NumberValue(float64(t))
	case int64:
		return NumberValue(float64(t))
	case uint:
		return NumberValue(float64(t))
	case uint32:
		return NumberValue(float64(t))
	case uint64:
		return NumberValue(float64(t))
	case string:
		return StringValue(t)
	case *Object:
		return ObjectValue(t)
	}
	return Undefined
}

// ToGo converts a Value back to a plain Go value at the embedding boundary:
// undefined and null map to nil (distinguish them with Tag before
// converting, if it matters), numbers to float64, strings to string,
// booleans to bool, and objects to *Object.
func (v Value) ToGo() interface{} {
	switch v.tag {
	case TagBool:
		return v.Bool()
	case TagNumber:
		return v.num
	case TagString:
		return v.Str()
	case TagObject:
		return (*Object)(v.ptr)
	}
	return nil
}

// String renders the value for debugging (fmt verbs). It never invokes user
// code; console.log output goes through Display instead.
func (v Value) String() string {
	switch v.tag {
	case TagUndefined:
		return "undefined"
	case TagNull:
		return "null"
	case TagBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	case TagNumber:
		return printer.FormatNumber(v.num)
	case TagString:
		return strconv.Quote(v.Str())
	case TagObject:
		return "[object " + (*Object)(v.ptr).Class + "]"
	}
	return "<internal>"
}

// NativeFunc is a function implemented in Go. Natives back the standard
// library and the Stopify runtime primitives.
type NativeFunc func(in *Interp, this Value, args []Value) (Value, error)

// Prop is a property slot: either a data property or an accessor.
type Prop struct {
	Value      Value
	Getter     *Object // non-nil for accessor properties
	Setter     *Object
	Enumerable bool
}

// Closure is the code and environment of a JavaScript function. The code —
// name, parameters, body, arrow-ness, frame layout — lives in the shared
// *ast.Func; duplicating those fields here would cost ~80 bytes per
// closure, and instrumented programs create closures on every call.
type Closure struct {
	Decl *ast.Func
	Env  *Env
	Self *Object // the function object, for named-expression self-reference

	hoisted *hoistInfo // lazily computed var/function hoisting data
}

// Name returns the function's declared name ("" for anonymous).
func (c *Closure) Name() string { return c.Decl.Name }

// Params returns the parameter names.
func (c *Closure) Params() []string { return c.Decl.Params }

// Body returns the function body.
func (c *Closure) Body() []ast.Stmt { return c.Decl.Body }

// Arrow reports whether this is an arrow function (lexical this, no
// arguments object).
func (c *Closure) Arrow() bool { return c.Decl.Arrow }

// Scope returns the resolver's frame layout; nil means calls build dynamic
// map frames.
func (c *Closure) Scope() *ast.ScopeInfo { return c.Decl.Scope }

// Object is everything with identity: plain objects, arrays, functions,
// errors, and the arguments object.
type Object struct {
	Class string // "Object", "Array", "Function", "Error", "Arguments", ...
	Proto *Object

	// shape describes the own-property layout (see shape.go); slot i of
	// slots holds the property named shape.keys[i]. A nil shape means the
	// object has never had an own property.
	shape *Shape
	slots []Prop

	// shapeRoot is the root of the transition tree for objects whose
	// prototype is this object (lazily created by emptyShapeFor).
	shapeRoot *Shape

	// usedAsProto is set the first time an inline-cache fill walks across
	// this object as part of a prototype chain; from then on, layout changes
	// here bump protoEpoch to invalidate chain caches.
	usedAsProto bool

	// Elems backs Array and Arguments objects.
	Elems []Value

	// Function objects have exactly one of Fn (JavaScript), Native, or
	// Bound set.
	Fn         *Closure
	Native     NativeFunc
	NativeName string

	// Bound is set on the result of Function.prototype.bind: a data-backed
	// function kind (target, receiver, partial args) instead of an opaque
	// native closure, so the snapshot codec can traverse it.
	Bound *BoundFunction

	// Date is the data slot of a Date instance: the construction-time
	// epoch milliseconds. Methods live on the shared Date.prototype, so
	// the instance itself is plain serializable data.
	Date *DateData

	// Extra carries host-specific payloads (e.g. reified continuation
	// frames owned by the Stopify runtime).
	Extra interface{}
}

// NewObject returns a plain object with the given prototype.
func NewObject(proto *Object) *Object {
	return &Object{Class: "Object", Proto: proto}
}

// BoundFunction is the state of a function produced by
// Function.prototype.bind: the target callable, the fixed receiver, and the
// partially-applied arguments. Calling prepends Args and uses This;
// constructing prepends Args and ignores This (spec §10.4.1.2).
type BoundFunction struct {
	Target Value
	This   Value
	Args   []Value
}

// DateData carries a Date instance's time value (epoch milliseconds).
type DateData struct {
	MS float64
}

// IsCallable reports whether o can be applied.
func (o *Object) IsCallable() bool {
	return o != nil && (o.Fn != nil || o.Native != nil || o.Bound != nil)
}

// Own returns the own property slot for key, or nil. The pointer is only
// valid until the next property addition (which may grow the slots array);
// callers read or write through it immediately.
func (o *Object) Own(key string) *Prop {
	if i := o.shape.slotOf(key); i >= 0 {
		return &o.slots[i]
	}
	return nil
}

// ensureShape materializes the empty root shape so the object can
// participate in shape compares before its first property.
func (o *Object) ensureShape() *Shape {
	if o.shape == nil {
		o.shape = emptyShapeFor(o.Proto)
	}
	return o.shape
}

// SetOwn defines or overwrites an own enumerable data property.
func (o *Object) SetOwn(key string, v Value) {
	o.setSlot(key, Prop{Value: v, Enumerable: true})
}

// SetHidden defines a non-enumerable data property (builtin methods).
func (o *Object) SetHidden(key string, v Value) {
	o.setSlot(key, Prop{Value: v, Enumerable: false})
}

// SetAccessor installs a getter/setter pair (either may be nil).
func (o *Object) SetAccessor(key string, getter, setter *Object, enumerable bool) {
	o.setSlot(key, Prop{Getter: getter, Setter: setter, Enumerable: enumerable})
}

func (o *Object) setSlot(key string, p Prop) {
	o.ensureShape()
	if i, ok := o.shape.index[key]; ok {
		if o.shape.accessor[i] != isAccessor(&p) {
			// The property changes kind in place; rebuild the shape from
			// the root with the new kind on this key's edge. The object
			// lands on a different (canonical) shape, so cached fast paths
			// that assumed the old kind stop matching — and, because the
			// kind rides on the transition edge, later rebuilds (Delete,
			// SetProto) preserve it.
			o.shape = o.shape.rebuild(o.shape.root, -1, i)
			if o.usedAsProto {
				bumpProtoEpoch()
			}
		}
		o.slots[i] = p
		return
	}
	o.shape = o.shape.transition(key, isAccessor(&p))
	if o.slots == nil {
		// Objects typically grow a handful of properties right after
		// creation; starting at capacity 4 turns the 1→2→4 append
		// reallocation ladder into a single allocation.
		o.slots = make([]Prop, 0, 4)
	}
	o.slots = append(o.slots, p)
	if o.usedAsProto {
		bumpProtoEpoch()
	}
}

func isAccessor(p *Prop) bool { return p.Getter != nil || p.Setter != nil }

// SetProto replaces the prototype, re-rooting the shape under the new
// prototype's transition tree so every cache that guarded on the old shape
// (and therefore on the old prototype) misses.
func (o *Object) SetProto(proto *Object) {
	if o.Proto == proto {
		return
	}
	o.Proto = proto
	if o.shape != nil {
		o.shape = o.shape.rebuild(emptyShapeFor(proto), -1, -1)
	}
	bumpProtoEpoch()
}

// OwnOrLazy returns the own property slot for key, materializing the own
// properties a JavaScript function creates lazily — currently .length — so
// that closure creation allocates no property storage until something
// inspects it. Every own-property probe (reads, hasOwnProperty, property
// descriptors) funnels through here to keep the lazy set in one place;
// .prototype is also lazy but needs the interpreter to build an object, so
// it materializes in objGet.
func (o *Object) OwnOrLazy(key string) *Prop {
	if i := o.ownOrLazySlot(key); i >= 0 {
		return &o.slots[i]
	}
	return nil
}

// ownOrLazySlot is OwnOrLazy returning a slot index (for cache fills).
func (o *Object) ownOrLazySlot(key string) int {
	if i := o.shape.slotOf(key); i >= 0 {
		return i
	}
	if key == "length" && o.Fn != nil {
		o.SetHidden("length", NumberValue(float64(len(o.Fn.Params()))))
		return o.shape.slotOf(key)
	}
	if key == "length" && o.Bound != nil {
		o.SetHidden("length", NumberValue(boundLength(o)))
		return o.shape.slotOf(key)
	}
	return -1
}

// boundLength computes a bound function's .length: the ultimate target's
// parameter count minus every bound argument along the chain, clamped at
// zero (spec: BoundFunctionCreate). The walk is depth-capped because a
// hostile snapshot blob can, in principle, decode a bound cycle.
func boundLength(o *Object) float64 {
	drop, cur := 0, o
	for depth := 0; depth < 1000 && cur != nil && cur.Bound != nil; depth++ {
		drop += len(cur.Bound.Args)
		cur = cur.Bound.Target.Obj()
	}
	base := 0
	if cur != nil && cur.Fn != nil {
		base = len(cur.Fn.Params())
	}
	if n := base - drop; n > 0 {
		return float64(n)
	}
	return 0
}

// Delete removes an own property and reports whether it existed. The shape
// is rebuilt from the root without the deleted key (compacting the slots
// array to match), which both keeps later re-additions on the shared
// transition tree and invalidates every cache that guarded on the old
// shape.
func (o *Object) Delete(key string) bool {
	i := o.shape.slotOf(key)
	if i < 0 {
		return false
	}
	ns := o.shape.rebuild(o.shape.root, i, -1)
	o.slots = append(o.slots[:i], o.slots[i+1:]...)
	o.shape = ns
	if o.usedAsProto {
		bumpProtoEpoch()
	}
	return true
}

// OwnKeys returns enumerable own property names in insertion order; for
// arrays the indices come first, as engines do.
func (o *Object) OwnKeys() []string {
	var out []string
	if o.Class == "Array" || o.Class == "Arguments" {
		for i := range o.Elems {
			out = append(out, strconv.Itoa(i))
		}
	}
	if o.shape != nil {
		for i, k := range o.shape.keys {
			if o.slots[i].Enumerable {
				out = append(out, k)
			}
		}
	}
	return out
}

// arrayIndex parses key as a valid array index; ok is false otherwise.
func arrayIndex(key string) (int, bool) {
	if key == "" || len(key) > 10 {
		return 0, false
	}
	if key == "0" {
		return 0, true
	}
	if key[0] < '1' || key[0] > '9' {
		return 0, false
	}
	n := 0
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Thrown is a JavaScript exception propagating as a Go error.
type Thrown struct {
	Value Value
}

// Error implements error with a short description of the thrown value.
func (t *Thrown) Error() string {
	switch t.Value.tag {
	case TagString:
		return "Thrown: " + t.Value.Str()
	case TagObject:
		v := t.Value.Obj()
		if v.Class == "Error" {
			var name, msg string
			if s := v.Own("name"); s != nil && s.Value.IsString() {
				name = s.Value.Str()
			}
			if m := v.Own("message"); m != nil && m.Value.IsString() {
				msg = m.Value.Str()
			}
			return fmt.Sprintf("%s: %s", name, msg)
		}
		return "Thrown: [object " + v.Class + "]"
	default:
		return fmt.Sprintf("Thrown: %v", t.Value)
	}
}

// Control-flow completions, modeled as errors so they unwind evaluation.

type breakErr struct{ label string }
type continueErr struct{ label string }
type returnErr struct{ value Value }

func (e *breakErr) Error() string    { return "break " + e.label }
func (e *continueErr) Error() string { return "continue " + e.label }
func (e *returnErr) Error() string   { return "return" }

// Unlabeled break/continue — the overwhelmingly common case — are interned
// so loop control never allocates. The structs are immutable after
// creation, so sharing is safe.
var (
	breakUnlabeled    = &breakErr{}
	continueUnlabeled = &continueErr{}
)
