// Package interp is the JavaScript engine substrate: a tree-walking
// interpreter for the subset defined in internal/ast, with the semantics
// Stopify's transformations depend on — prototype chains, closures, the
// arguments object, getters and setters, implicit valueOf/toString
// conversions, try/catch/finally, constructors with new.target, and a
// browser-like native stack limit.
//
// The interpreter plays the role of V8/Chakra/SpiderMonkey/JavaScriptCore in
// the paper's evaluation. It charges work units through an engine.Profile so
// that the browser-specific cost asymmetries (Figure 2b, Figure 11) are
// reproducible, and it is deliberately not a JIT: the paper's results are
// relative slowdowns, which survive a uniformly slower engine (DESIGN.md §1).
package interp

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/ast"
)

// Value is any JavaScript value. The concrete types are:
//
//	Undefined, Null, bool, float64, string, *Object
type Value = interface{}

// Undefined is the JavaScript undefined value.
type Undefined struct{}

// Null is the JavaScript null value.
type Null struct{}

// Interned singletons. Undefined and Null are zero-size, so boxing them
// into an interface never allocates, but the named values keep hot paths
// uniform and intention-revealing.
var (
	undefinedValue Value = Undefined{}
	nullValue      Value = Null{}
)

// smallNumbers interns the Values of small non-negative integers — loop
// counters, indexes, lengths — because boxing a float64 into an interface
// heap-allocates for every bit pattern Go's runtime does not intern.
const smallNumberLimit = 4096

var smallNumbers = func() []Value {
	t := make([]Value, smallNumberLimit)
	for i := range t {
		t[i] = float64(i)
	}
	return t
}()

// boxNumber converts a float64 to a Value without allocating for small
// integers. Negative zero is excluded so the interned +0 cannot leak into
// sign-observable arithmetic (1/-0 === -Infinity).
func boxNumber(f float64) Value {
	if i := int(f); float64(i) == f && i >= 0 && i < smallNumberLimit && (i != 0 || !math.Signbit(f)) {
		return smallNumbers[i]
	}
	return f
}

// NativeFunc is a function implemented in Go. Natives back the standard
// library and the Stopify runtime primitives.
type NativeFunc func(in *Interp, this Value, args []Value) (Value, error)

// Prop is a property slot: either a data property or an accessor.
type Prop struct {
	Value      Value
	Getter     *Object // non-nil for accessor properties
	Setter     *Object
	Enumerable bool
}

// Closure is the code and environment of a JavaScript function.
type Closure struct {
	Name   string
	Params []string
	Body   []ast.Stmt
	Env    *Env
	Arrow  bool
	Self   *Object // the function object, for named-expression self-reference

	// Scope is the resolver's frame layout; nil means calls build dynamic
	// map frames.
	Scope *ast.ScopeInfo

	hoisted *hoistInfo // lazily computed var/function hoisting data
}

// Object is everything with identity: plain objects, arrays, functions,
// errors, and the arguments object.
type Object struct {
	Class string // "Object", "Array", "Function", "Error", "Arguments", ...
	Proto *Object

	props map[string]*Prop
	keys  []string // insertion order, for for-in

	// Elems backs Array and Arguments objects.
	Elems []Value

	// Function objects have exactly one of Fn (JavaScript) or Native set.
	Fn         *Closure
	Native     NativeFunc
	NativeName string

	// Extra carries host-specific payloads (e.g. reified continuation
	// frames owned by the Stopify runtime).
	Extra interface{}
}

// NewObject returns a plain object with the given prototype.
func NewObject(proto *Object) *Object {
	return &Object{Class: "Object", Proto: proto}
}

// IsCallable reports whether o can be applied.
func (o *Object) IsCallable() bool { return o != nil && (o.Fn != nil || o.Native != nil) }

// Own returns the own property slot for key, or nil.
func (o *Object) Own(key string) *Prop {
	if o.props == nil {
		return nil
	}
	return o.props[key]
}

// SetOwn defines or overwrites an own enumerable data property.
func (o *Object) SetOwn(key string, v Value) {
	o.setSlot(key, &Prop{Value: v, Enumerable: true})
}

// SetHidden defines a non-enumerable data property (builtin methods).
func (o *Object) SetHidden(key string, v Value) {
	o.setSlot(key, &Prop{Value: v, Enumerable: false})
}

// SetAccessor installs a getter/setter pair (either may be nil).
func (o *Object) SetAccessor(key string, getter, setter *Object, enumerable bool) {
	o.setSlot(key, &Prop{Getter: getter, Setter: setter, Enumerable: enumerable})
}

func (o *Object) setSlot(key string, p *Prop) {
	if o.props == nil {
		o.props = make(map[string]*Prop)
	}
	if _, exists := o.props[key]; !exists {
		o.keys = append(o.keys, key)
	}
	o.props[key] = p
}

// OwnOrLazy returns the own property slot for key, materializing the own
// properties a JavaScript function creates lazily — currently .length — so
// that closure creation allocates no property storage until something
// inspects it. Every own-property probe (reads, hasOwnProperty, property
// descriptors) funnels through here to keep the lazy set in one place;
// .prototype is also lazy but needs the interpreter to build an object, so
// it materializes in objGet.
func (o *Object) OwnOrLazy(key string) *Prop {
	if p := o.Own(key); p != nil {
		return p
	}
	if key == "length" && o.Fn != nil {
		o.SetHidden("length", float64(len(o.Fn.Params)))
		return o.Own("length")
	}
	return nil
}

// Delete removes an own property and reports whether it existed.
func (o *Object) Delete(key string) bool {
	if o.props == nil {
		return false
	}
	if _, ok := o.props[key]; !ok {
		return false
	}
	delete(o.props, key)
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// OwnKeys returns enumerable own property names in insertion order; for
// arrays the indices come first, as engines do.
func (o *Object) OwnKeys() []string {
	var out []string
	if o.Class == "Array" || o.Class == "Arguments" {
		for i := range o.Elems {
			out = append(out, strconv.Itoa(i))
		}
	}
	for _, k := range o.keys {
		if p := o.props[k]; p != nil && p.Enumerable {
			out = append(out, k)
		}
	}
	return out
}

// arrayIndex parses key as a valid array index; ok is false otherwise.
func arrayIndex(key string) (int, bool) {
	if key == "" || len(key) > 10 {
		return 0, false
	}
	if key == "0" {
		return 0, true
	}
	if key[0] < '1' || key[0] > '9' {
		return 0, false
	}
	n := 0
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Thrown is a JavaScript exception propagating as a Go error.
type Thrown struct {
	Value Value
}

// Error implements error with a short description of the thrown value.
func (t *Thrown) Error() string {
	switch v := t.Value.(type) {
	case string:
		return "Thrown: " + v
	case *Object:
		if v.Class == "Error" {
			name, _ := v.Own("name").Value.(string)
			var msg string
			if m := v.Own("message"); m != nil {
				msg, _ = m.Value.(string)
			}
			return fmt.Sprintf("%s: %s", name, msg)
		}
		return "Thrown: [object " + v.Class + "]"
	default:
		return fmt.Sprintf("Thrown: %v", v)
	}
}

// Control-flow completions, modeled as errors so they unwind evaluation.

type breakErr struct{ label string }
type continueErr struct{ label string }
type returnErr struct{ value Value }

func (e *breakErr) Error() string    { return "break " + e.label }
func (e *continueErr) Error() string { return "continue " + e.label }
func (e *returnErr) Error() string   { return "return" }
