// Package interp is the JavaScript engine substrate: a tree-walking
// interpreter for the subset defined in internal/ast, with the semantics
// Stopify's transformations depend on — prototype chains, closures, the
// arguments object, getters and setters, implicit valueOf/toString
// conversions, try/catch/finally, constructors with new.target, and a
// browser-like native stack limit.
//
// The interpreter plays the role of V8/Chakra/SpiderMonkey/JavaScriptCore in
// the paper's evaluation. It charges work units through an engine.Profile so
// that the browser-specific cost asymmetries (Figure 2b, Figure 11) are
// reproducible, and it is deliberately not a JIT: the paper's results are
// relative slowdowns, which survive a uniformly slower engine (DESIGN.md §1).
package interp

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/ast"
)

// Value is any JavaScript value. The concrete types are:
//
//	Undefined, Null, bool, float64, string, *Object
type Value = interface{}

// Undefined is the JavaScript undefined value.
type Undefined struct{}

// Null is the JavaScript null value.
type Null struct{}

// Interned singletons. Undefined and Null are zero-size, so boxing them
// into an interface never allocates, but the named values keep hot paths
// uniform and intention-revealing.
var (
	undefinedValue Value = Undefined{}
	nullValue      Value = Null{}
)

// smallNumbers interns the Values of small integers — loop counters,
// indexes, lengths, deltas — because boxing a float64 into an interface
// heap-allocates for every bit pattern Go's runtime does not intern.
// Negatives get a smaller table: they appear as step values and sentinel
// results (-1), not as index ranges.
const (
	smallNumberLimit   = 4096
	smallNegativeLimit = 512
)

var smallNumbers = func() []Value {
	t := make([]Value, smallNumberLimit)
	for i := range t {
		t[i] = float64(i)
	}
	return t
}()

var smallNegatives = func() []Value {
	t := make([]Value, smallNegativeLimit)
	for i := range t {
		t[i] = float64(-i)
	}
	return t
}()

// boxNumber converts a float64 to a Value without allocating for small
// integers. Negative zero is excluded so the interned +0 cannot leak into
// sign-observable arithmetic (1/-0 === -Infinity).
func boxNumber(f float64) Value {
	if i := int(f); float64(i) == f {
		if i >= 0 && i < smallNumberLimit && (i != 0 || !math.Signbit(f)) {
			return smallNumbers[i]
		}
		if i < 0 && i > -smallNegativeLimit {
			return smallNegatives[-i]
		}
	}
	return f
}

// NativeFunc is a function implemented in Go. Natives back the standard
// library and the Stopify runtime primitives.
type NativeFunc func(in *Interp, this Value, args []Value) (Value, error)

// Prop is a property slot: either a data property or an accessor.
type Prop struct {
	Value      Value
	Getter     *Object // non-nil for accessor properties
	Setter     *Object
	Enumerable bool
}

// Closure is the code and environment of a JavaScript function. The code —
// name, parameters, body, arrow-ness, frame layout — lives in the shared
// *ast.Func; duplicating those fields here would cost ~80 bytes per
// closure, and instrumented programs create closures on every call.
type Closure struct {
	Decl *ast.Func
	Env  *Env
	Self *Object // the function object, for named-expression self-reference

	hoisted *hoistInfo // lazily computed var/function hoisting data
}

// Name returns the function's declared name ("" for anonymous).
func (c *Closure) Name() string { return c.Decl.Name }

// Params returns the parameter names.
func (c *Closure) Params() []string { return c.Decl.Params }

// Body returns the function body.
func (c *Closure) Body() []ast.Stmt { return c.Decl.Body }

// Arrow reports whether this is an arrow function (lexical this, no
// arguments object).
func (c *Closure) Arrow() bool { return c.Decl.Arrow }

// Scope returns the resolver's frame layout; nil means calls build dynamic
// map frames.
func (c *Closure) Scope() *ast.ScopeInfo { return c.Decl.Scope }

// Object is everything with identity: plain objects, arrays, functions,
// errors, and the arguments object.
type Object struct {
	Class string // "Object", "Array", "Function", "Error", "Arguments", ...
	Proto *Object

	// shape describes the own-property layout (see shape.go); slot i of
	// slots holds the property named shape.keys[i]. A nil shape means the
	// object has never had an own property.
	shape *Shape
	slots []Prop

	// shapeRoot is the root of the transition tree for objects whose
	// prototype is this object (lazily created by emptyShapeFor).
	shapeRoot *Shape

	// usedAsProto is set the first time an inline-cache fill walks across
	// this object as part of a prototype chain; from then on, layout changes
	// here bump protoEpoch to invalidate chain caches.
	usedAsProto bool

	// Elems backs Array and Arguments objects.
	Elems []Value

	// Function objects have exactly one of Fn (JavaScript) or Native set.
	Fn         *Closure
	Native     NativeFunc
	NativeName string

	// Extra carries host-specific payloads (e.g. reified continuation
	// frames owned by the Stopify runtime).
	Extra interface{}
}

// NewObject returns a plain object with the given prototype.
func NewObject(proto *Object) *Object {
	return &Object{Class: "Object", Proto: proto}
}

// IsCallable reports whether o can be applied.
func (o *Object) IsCallable() bool { return o != nil && (o.Fn != nil || o.Native != nil) }

// Own returns the own property slot for key, or nil. The pointer is only
// valid until the next property addition (which may grow the slots array);
// callers read or write through it immediately.
func (o *Object) Own(key string) *Prop {
	if i := o.shape.slotOf(key); i >= 0 {
		return &o.slots[i]
	}
	return nil
}

// ensureShape materializes the empty root shape so the object can
// participate in shape compares before its first property.
func (o *Object) ensureShape() *Shape {
	if o.shape == nil {
		o.shape = emptyShapeFor(o.Proto)
	}
	return o.shape
}

// SetOwn defines or overwrites an own enumerable data property.
func (o *Object) SetOwn(key string, v Value) {
	o.setSlot(key, Prop{Value: v, Enumerable: true})
}

// SetHidden defines a non-enumerable data property (builtin methods).
func (o *Object) SetHidden(key string, v Value) {
	o.setSlot(key, Prop{Value: v, Enumerable: false})
}

// SetAccessor installs a getter/setter pair (either may be nil).
func (o *Object) SetAccessor(key string, getter, setter *Object, enumerable bool) {
	o.setSlot(key, Prop{Getter: getter, Setter: setter, Enumerable: enumerable})
}

func (o *Object) setSlot(key string, p Prop) {
	o.ensureShape()
	if i, ok := o.shape.index[key]; ok {
		if o.shape.accessor[i] != isAccessor(&p) {
			// The property changes kind in place; rebuild the shape from
			// the root with the new kind on this key's edge. The object
			// lands on a different (canonical) shape, so cached fast paths
			// that assumed the old kind stop matching — and, because the
			// kind rides on the transition edge, later rebuilds (Delete,
			// SetProto) preserve it.
			o.shape = o.shape.rebuild(o.shape.root, -1, i)
			if o.usedAsProto {
				bumpProtoEpoch()
			}
		}
		o.slots[i] = p
		return
	}
	o.shape = o.shape.transition(key, isAccessor(&p))
	if o.slots == nil {
		// Objects typically grow a handful of properties right after
		// creation; starting at capacity 4 turns the 1→2→4 append
		// reallocation ladder into a single allocation.
		o.slots = make([]Prop, 0, 4)
	}
	o.slots = append(o.slots, p)
	if o.usedAsProto {
		bumpProtoEpoch()
	}
}

func isAccessor(p *Prop) bool { return p.Getter != nil || p.Setter != nil }

// SetProto replaces the prototype, re-rooting the shape under the new
// prototype's transition tree so every cache that guarded on the old shape
// (and therefore on the old prototype) misses.
func (o *Object) SetProto(proto *Object) {
	if o.Proto == proto {
		return
	}
	o.Proto = proto
	if o.shape != nil {
		o.shape = o.shape.rebuild(emptyShapeFor(proto), -1, -1)
	}
	bumpProtoEpoch()
}

// OwnOrLazy returns the own property slot for key, materializing the own
// properties a JavaScript function creates lazily — currently .length — so
// that closure creation allocates no property storage until something
// inspects it. Every own-property probe (reads, hasOwnProperty, property
// descriptors) funnels through here to keep the lazy set in one place;
// .prototype is also lazy but needs the interpreter to build an object, so
// it materializes in objGet.
func (o *Object) OwnOrLazy(key string) *Prop {
	if i := o.ownOrLazySlot(key); i >= 0 {
		return &o.slots[i]
	}
	return nil
}

// ownOrLazySlot is OwnOrLazy returning a slot index (for cache fills).
func (o *Object) ownOrLazySlot(key string) int {
	if i := o.shape.slotOf(key); i >= 0 {
		return i
	}
	if key == "length" && o.Fn != nil {
		o.SetHidden("length", float64(len(o.Fn.Params())))
		return o.shape.slotOf(key)
	}
	return -1
}

// Delete removes an own property and reports whether it existed. The shape
// is rebuilt from the root without the deleted key (compacting the slots
// array to match), which both keeps later re-additions on the shared
// transition tree and invalidates every cache that guarded on the old
// shape.
func (o *Object) Delete(key string) bool {
	i := o.shape.slotOf(key)
	if i < 0 {
		return false
	}
	ns := o.shape.rebuild(o.shape.root, i, -1)
	o.slots = append(o.slots[:i], o.slots[i+1:]...)
	o.shape = ns
	if o.usedAsProto {
		bumpProtoEpoch()
	}
	return true
}

// OwnKeys returns enumerable own property names in insertion order; for
// arrays the indices come first, as engines do.
func (o *Object) OwnKeys() []string {
	var out []string
	if o.Class == "Array" || o.Class == "Arguments" {
		for i := range o.Elems {
			out = append(out, strconv.Itoa(i))
		}
	}
	if o.shape != nil {
		for i, k := range o.shape.keys {
			if o.slots[i].Enumerable {
				out = append(out, k)
			}
		}
	}
	return out
}

// arrayIndex parses key as a valid array index; ok is false otherwise.
func arrayIndex(key string) (int, bool) {
	if key == "" || len(key) > 10 {
		return 0, false
	}
	if key == "0" {
		return 0, true
	}
	if key[0] < '1' || key[0] > '9' {
		return 0, false
	}
	n := 0
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Thrown is a JavaScript exception propagating as a Go error.
type Thrown struct {
	Value Value
}

// Error implements error with a short description of the thrown value.
func (t *Thrown) Error() string {
	switch v := t.Value.(type) {
	case string:
		return "Thrown: " + v
	case *Object:
		if v.Class == "Error" {
			name, _ := v.Own("name").Value.(string)
			var msg string
			if m := v.Own("message"); m != nil {
				msg, _ = m.Value.(string)
			}
			return fmt.Sprintf("%s: %s", name, msg)
		}
		return "Thrown: [object " + v.Class + "]"
	default:
		return fmt.Sprintf("Thrown: %v", v)
	}
}

// Control-flow completions, modeled as errors so they unwind evaluation.

type breakErr struct{ label string }
type continueErr struct{ label string }
type returnErr struct{ value Value }

func (e *breakErr) Error() string    { return "break " + e.label }
func (e *continueErr) Error() string { return "continue " + e.label }
func (e *returnErr) Error() string   { return "return" }

// Unlabeled break/continue — the overwhelmingly common case — are interned
// so loop control never allocates. The structs are immutable after
// creation, so sharing is safe.
var (
	breakUnlabeled    = &breakErr{}
	continueUnlabeled = &continueErr{}
)
