package interp

import (
	"errors"
	"testing"

	"repro/internal/parser"
	"repro/internal/resolve"
)

// Allocation-meter coverage (ISSUE 6): the memory budget shares the
// statement-boundary check with MaxSteps and the quantum on both engines,
// trips as an uncatchable plain error, pre-checks unbounded
// single-statement allocators, and credits recycled call frames so deep
// call traffic is net-zero against the budget.

func memRun(t *testing.T, bytecode bool, budget uint64, src string) (*Interp, error) {
	t.Helper()
	in := New(Options{Bytecode: bytecode, MemBudget: budget})
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	return in, in.RunProgram(prog)
}

const allocLoop = `
function build(n) {
  var keep = [];
  for (var i = 0; i < n; i++) { keep.push({a: i, b: i, c: i}); }
  return keep.length;
}
build(20000);
`

func TestMemLimitTripsAtBoundary(t *testing.T) {
	for _, bc := range []bool{false, true} {
		// 20k objects at ~300+ metered bytes each blows a 256 KiB budget.
		in, err := memRun(t, bc, 256<<10, allocLoop)
		if !errors.Is(err, ErrMemLimit) {
			t.Errorf("bytecode=%v: err=%v, want ErrMemLimit", bc, err)
		}
		// The meter exceeded the budget at the trip point; the unwind then
		// credits the call frames back, so the final reading may sit just
		// under the budget — but it must still be in its neighborhood.
		if in.MemUsed() < 200<<10 {
			t.Errorf("bytecode=%v: MemUsed=%d, want near the 256KiB budget", bc, in.MemUsed())
		}
	}
}

func TestMemUnmeteredByDefault(t *testing.T) {
	for _, bc := range []bool{false, true} {
		in, err := memRun(t, bc, 0, allocLoop)
		if err != nil {
			t.Fatalf("bytecode=%v: unmetered run failed: %v", bc, err)
		}
		if in.MemUsed() == 0 {
			t.Errorf("bytecode=%v: meter did not count with budget disabled", bc)
		}
	}
}

func TestMemLimitUncatchable(t *testing.T) {
	// Guest try/catch must not intercept the budget verdict: ErrMemLimit is
	// a plain Go error, not a Thrown, exactly like ErrStepBudget.
	src := `
var caught = false;
try {
  var keep = [];
  for (var i = 0; i < 100000; i++) { keep.push({a: i, b: i}); }
} catch (e) {
  caught = true;
}
`
	for _, bc := range []bool{false, true} {
		_, err := memRun(t, bc, 64<<10, src)
		if !errors.Is(err, ErrMemLimit) {
			t.Errorf("bytecode=%v: err=%v, want ErrMemLimit to escape the guest's try/catch", bc, err)
		}
	}
}

func TestMemFrameTrafficIsNetZero(t *testing.T) {
	// 50k calls through pooled, non-escaping frames: charge on acquire,
	// credit on release. A cumulative-only meter would bill ~50k × frame
	// cost and kill this well-behaved guest.
	src := `
function leaf(a, b) { var t = a + b; return t; }
var acc = 0;
for (var i = 0; i < 50000; i++) { acc = acc + leaf(i, 1) - leaf(i, 0); }
`
	for _, bc := range []bool{false, true} {
		in, err := memRun(t, bc, 128<<10, src)
		if err != nil {
			t.Fatalf("bytecode=%v: frame churn tripped the meter: %v (MemUsed=%d)", bc, err, in.MemUsed())
		}
	}
}

func TestMemEscapedFramesStayCharged(t *testing.T) {
	// The same call count, but every frame escapes into a closure the guest
	// keeps: now the frames are live state and must exhaust the budget.
	src := `
var keep = [];
function make(i) { return function() { return i; }; }
for (var i = 0; i < 50000; i++) { keep.push(make(i)); }
`
	for _, bc := range []bool{false, true} {
		_, err := memRun(t, bc, 128<<10, src)
		if !errors.Is(err, ErrMemLimit) {
			t.Errorf("bytecode=%v: err=%v, want ErrMemLimit for retained closures", bc, err)
		}
	}
}

func TestMemPreCheckRefusesGiantAllocations(t *testing.T) {
	// Each of these is a single statement that would allocate far past the
	// budget in one native call; the pre-check must refuse BEFORE the host
	// allocates, and the run must die with ErrMemLimit, not a RangeError
	// the guest could catch.
	cases := []struct{ name, src string }{
		{"array-ctor", `var a = new Array(50000000);`},
		{"array-length", `var a = []; a.length = 50000000;`},
		{"array-index", `var a = []; a[49999999] = 1;`},
		{"string-repeat", `var s = "x".repeat(50000000);`},
		{"string-concat", `var s = "x"; for (var i = 0; i < 40; i++) { s = s + s; }`},
	}
	for _, tc := range cases {
		for _, bc := range []bool{false, true} {
			_, err := memRun(t, bc, 1<<20, tc.src)
			if !errors.Is(err, ErrMemLimit) {
				t.Errorf("%s bytecode=%v: err=%v, want ErrMemLimit", tc.name, bc, err)
			}
		}
	}
}

func TestMemLimitSurvivesQuantumRearm(t *testing.T) {
	// The folding edge: once over budget, stepLimit is pinned at 0 and a
	// quantum hook that re-arms (the supervisor does, every turn) must not
	// slide the boundary check past the pending ErrMemLimit.
	for _, bc := range []bool{false, true} {
		in := New(Options{Bytecode: bc, MemBudget: 64 << 10, QuantumSteps: 100})
		in.SetOnQuantum(func() { in.ArmQuantum(100) })
		prog, err := parser.Parse(allocLoop)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Program(prog)
		if err := in.RunProgram(prog); !errors.Is(err, ErrMemLimit) {
			t.Errorf("bytecode=%v: err=%v, want ErrMemLimit despite quantum re-arms", bc, err)
		}
	}
}

func TestSetMemBudgetExtends(t *testing.T) {
	// The meter is cumulative; raising the budget un-pins the boundary
	// check (recomputeStepLimit) and lets the realm continue — the resume
	// story a host extending a tenant's lease depends on.
	in, err := memRun(t, false, 32<<10, allocLoop)
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("setup: err=%v, want ErrMemLimit", err)
	}
	in.SetMemBudget(1 << 30)
	prog, perr := parser.Parse(`var after = {x: 1};`)
	if perr != nil {
		t.Fatal(perr)
	}
	resolve.Program(prog)
	if err := in.RunProgram(prog); err != nil {
		t.Fatalf("after raising the budget: %v", err)
	}
}

func TestResetMemMeter(t *testing.T) {
	in, err := memRun(t, false, 0, `var a = [1, 2, 3];`)
	if err != nil {
		t.Fatal(err)
	}
	if in.MemUsed() == 0 {
		t.Fatal("meter did not count")
	}
	in.ResetMemMeter()
	if in.MemUsed() != 0 {
		t.Fatalf("MemUsed=%d after reset, want 0", in.MemUsed())
	}
}
