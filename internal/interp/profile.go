package interp

// Guest-level sampling profiler. Every prof.every statements the interpreter
// records the current JS call stack (a shadow stack of function names pushed
// and popped at the single Call seam both engines funnel through) and
// attributes the statements executed since the previous sample to that
// stack. The trigger is folded into the same stepLimit threshold as
// MaxSteps, the scheduling quantum, and the memory meter, so an armed
// profiler adds zero compares to the statement-boundary fast path; a
// disarmed one (prof == nil, or the stopify_noprof build tag) leaves the
// interpreter untouched. Samples accumulate as folded stacks —
// "outer;inner" → statement count — the flamegraph collapsed format.

// ProfilerEnabled reports whether the sampling profiler was compiled into
// this binary (false under the stopify_noprof build tag). Callers that
// require samples — tests, the -profile benchmark mode — use this to skip
// rather than misread an empty profile as "nothing ran".
func ProfilerEnabled() bool { return profSeam }

// profState is the per-realm sampling profiler. All fields are owned by the
// executing goroutine; harvesting (TakeProfileFolded) follows the same
// owner-only contract as Steps.
type profState struct {
	every  uint64 // sampling period in statements; > 0 while armed
	next   uint64 // Steps value at which the next sample fires
	last   uint64 // Steps value at the previous sample (weight baseline)
	stack  []string
	phase  string // non-empty during capture/restore; annotated as a leaf
	folded map[string]uint64
}

// StartProfile arms statement-boundary stack sampling with period every; 0
// disarms (like StopProfile). Executing goroutine only. A no-op under the
// stopify_noprof build tag.
func (in *Interp) StartProfile(every uint64) {
	if !profSeam || every == 0 {
		in.StopProfile()
		return
	}
	in.prof = &profState{
		every:  every,
		next:   in.Steps + every,
		last:   in.Steps,
		folded: make(map[string]uint64),
	}
	in.recomputeStepLimit()
}

// StopProfile disarms sampling and drops accumulated samples.
func (in *Interp) StopProfile() {
	in.prof = nil
	in.recomputeStepLimit()
}

// TakeProfileFolded drains the accumulated folded-stack samples, leaving the
// profiler armed with an empty accumulator. Keys are ";"-joined stacks,
// root first; values are statement counts. Executing goroutine only (the
// supervisor harvests between turns, when the worker owns the realm).
func (in *Interp) TakeProfileFolded() map[string]uint64 {
	if in.prof == nil || len(in.prof.folded) == 0 {
		return nil
	}
	out := in.prof.folded
	in.prof.folded = make(map[string]uint64)
	in.prof.last = in.Steps
	return out
}

// SetProfilePhase annotates subsequent samples with a synthetic leaf frame —
// the runtime sets "(capture)"/"(restore)" around continuation capture and
// reconstruction so their statement cost shows up attributed, not smeared
// over whatever user frame happened to be on top. Empty clears it.
func (in *Interp) SetProfilePhase(phase string) {
	if in.prof != nil {
		in.prof.phase = phase
	}
}

// profResetBaseline re-anchors the sample window after a discontinuous jump
// in Steps (snapshot restore sets the cumulative counter in one write); the
// jumped-over statements ran in another realm and must not be attributed
// here.
func (in *Interp) profResetBaseline() {
	if in.prof != nil {
		in.prof.last = in.Steps
		in.prof.next = in.Steps + in.prof.every
		in.recomputeStepLimit()
	}
}

// profPush/profPop maintain the shadow stack at the Call boundary. Both are
// behind the profSeam const plus a nil check at the call site, so the
// disabled cost is one predictable branch per JS call, zero per statement.
func (in *Interp) profPush(name string) {
	if name == "" {
		name = "(anonymous)"
	}
	in.prof.stack = append(in.prof.stack, name)
}

func (in *Interp) profPop() {
	if n := len(in.prof.stack); n > 0 {
		in.prof.stack = in.prof.stack[:n-1]
	}
}

// profSample runs in stepBoundary once Steps crosses prof.next: it charges
// the statements since the previous sample to the current stack and
// schedules the next sample. The caller recomputes stepLimit on every exit
// path after this point.
func (in *Interp) profSample() {
	p := in.prof
	weight := in.Steps - p.last
	p.last = in.Steps
	p.next = in.Steps + p.every
	if weight == 0 {
		return
	}
	key := "(toplevel)"
	if len(p.stack) > 0 {
		n := len(p.stack) - 1
		for _, f := range p.stack {
			n += len(f)
		}
		b := make([]byte, 0, n)
		for i, f := range p.stack {
			if i > 0 {
				b = append(b, ';')
			}
			b = append(b, f...)
		}
		key = string(b)
	}
	if p.phase != "" {
		key += ";" + p.phase
	}
	p.folded[key] += weight
}
