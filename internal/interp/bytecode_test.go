package interp

import (
	"bytes"
	"testing"

	"repro/internal/parser"
	"repro/internal/resolve"
)

// runEngine parses, resolves, and executes src in a fresh realm with the
// given engine, returning console output (and failing the test on any
// execution error).
func runEngine(t *testing.T, src string, useBytecode bool) (string, *Interp) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	resolve.Program(prog)
	var buf bytes.Buffer
	in := New(Options{Out: &buf, Seed: 1, Bytecode: useBytecode})
	if err := in.RunProgram(prog); err != nil {
		t.Fatalf("run (bytecode=%v): %v", useBytecode, err)
	}
	return buf.String(), in
}

// runBoth executes src under both engines, asserts identical output, and
// asserts the bytecode engine actually executed compiled chunks (these
// tests exist to cover the bytecode path; silently tree-walking would make
// them vacuous).
func runBoth(t *testing.T, src string) string {
	t.Helper()
	tree, _ := runEngine(t, src, false)
	bc, in := runEngine(t, src, true)
	if tree != bc {
		t.Fatalf("engine divergence:\n  tree:     %q\n  bytecode: %q", tree, bc)
	}
	if _, _, runs := in.BytecodeStats(); runs == 0 {
		t.Fatal("bytecode engine compiled nothing; test is vacuous")
	}
	return bc
}

func TestBytecodeArrayHoles(t *testing.T) {
	out := runBoth(t, `
function f() {
  var a = [,1,,3,,];
  var b = [1,,3];
  return a.length + ":" + a.join("-") + ":" + b[1] + ":" + (1 in b);
}
console.log(f());`)
	want := "5:-1--3-:undefined:true\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestBytecodeDeleteArrayElemWithNamedProps(t *testing.T) {
	out := runBoth(t, `
function f() {
  var a = [1,2,3];
  a.foo = "x";
  delete a[1];
  return a[1] + "/" + a.length + "/" + a.foo;
}
console.log(f());`)
	if out != "undefined/3/x\n" {
		t.Fatalf("got %q", out)
	}
}

func TestBytecodeAccessorVsDataKinds(t *testing.T) {
	runBoth(t, `
function f() {
  var o = { get x() { return 1; }, set x(v) { this.sink = v; } };
  var o2 = { x: 5 };            // data-shaped sibling
  var r = o.x + ",";
  o.x = 42;                     // must hit the setter, not a slot write
  r += o.sink + ",";
  o2.x = 6;                     // warm data write site
  r += o2.x;
  return r;
}
console.log(f());`)
}

func TestBytecodeLabeledBreakContinue(t *testing.T) {
	out := runBoth(t, `
function f() {
  var log = "";
  outer: for (var i = 0; i < 4; i++) {
    switch (i) { case 3: break outer; }
    inner: for (var j = 0; j < 4; j++) {
      if (j === 1) { continue inner; }
      if (j === 3) { continue outer; }
      if (i === 2 && j === 2) { break outer; }
      log += i + "" + j + ";";
    }
  }
  return log;
}
console.log(f());`)
	if out != "00;02;10;12;20;\n" {
		t.Fatalf("got %q", out)
	}
}

func TestBytecodeArgumentsMaterialization(t *testing.T) {
	runBoth(t, `
function uses(a) { return arguments.length + ":" + arguments[1]; }
function skips(a) { return a * 2; } // no arguments reference: not materialized
function grows() { arguments[7] = "x"; return arguments.length + ":" + arguments[7]; }
console.log(uses(1, "two", 3), skips(21), grows(1, 2));`)
}

func TestBytecodeForInDynamicLoopVar(t *testing.T) {
	// The loop variable is an implicit global (assigned, never declared):
	// the bytecode store must create it at the root frame like the
	// tree-walker does.
	runBoth(t, `
function f(o) { for (k in o) {} return typeof k; }
console.log(f({a: 1}));`)
}

// TestReturnFreelistThroughEscapeHatch is the regression test for the
// completion-record freelist audit: a return completion that escapes a
// tree-walked statement (try/finally, the escape hatch) into the dispatch
// loop is consumed there — exactly once — and recycled. Interleaved calls
// through both consumption points (runChunk's escape-hatch path and Call's
// tree epilogue) must never observe each other's completion values, which
// is what would happen if a completion were recycled while still in
// flight or recycled twice.
func TestReturnFreelistThroughEscapeHatch(t *testing.T) {
	out := runBoth(t, `
function viaFinally(n) {
  try { return "f" + n; } finally { var sink = n; }
}
function viaFinallyOverride() {
  try { return "dropped"; } finally { return "override"; }
}
function plain(n) { return "p" + n; }
function nest(n) {
  // A tree-consumed return (plain) evaluated while an escape-hatch
  // return (viaFinally) is being constructed, and vice versa.
  try { return viaFinally(plain(n)) + "|" + plain(viaFinally(n)); } finally {}
}
var r = [];
for (var i = 0; i < 50; i++) {
  r.push(nest(i));
  r.push(viaFinallyOverride());
}
console.log(r[0], r[1], r[98], r[99], r.length);`)
	want := "fp0|pf0 override fp49|pf49 override 100\n"
	if out != want {
		t.Fatalf("freelist corruption: got %q want %q", out, want)
	}
}

// TestBytecodeStepBudgetParity checks both engines abort a runaway loop at
// the same statement boundary with the same error.
func TestBytecodeStepBudgetParity(t *testing.T) {
	src := `function f() { var i = 0; while (true) { i++; } } f();`
	run := func(bc bool) (uint64, error) {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Program(prog)
		in := New(Options{Bytecode: bc, MaxSteps: 10_000})
		rerr := in.RunProgram(prog)
		return in.Steps, rerr
	}
	treeSteps, treeErr := run(false)
	bcSteps, bcErr := run(true)
	if treeErr != ErrStepBudget || bcErr != ErrStepBudget {
		t.Fatalf("expected budget errors, got tree=%v bytecode=%v", treeErr, bcErr)
	}
	// Statement-marker fusion may count a handful of boundary-only
	// statements in one step, so the counters need not be bit-identical —
	// but they must agree to within the largest fused run.
	diff := int64(treeSteps) - int64(bcSteps)
	if diff < -8 || diff > 8 {
		t.Fatalf("step counters diverged: tree=%d bytecode=%d", treeSteps, bcSteps)
	}
}

// TestBytecodeDeepRecursionRangeError checks the engines share the stack
// limit behavior.
func TestBytecodeDeepRecursionRangeError(t *testing.T) {
	runBoth(t, `
function f(n) { return f(n + 1); }
try { f(0); } catch (e) { console.log(e.name); }`)
}

// TestBytecodeChunkStats sanity-checks the engine-evidence counters.
func TestBytecodeChunkStats(t *testing.T) {
	_, in := runEngine(t, `
function a() { return 1; }
function b() { return a() + a(); }
console.log(b());`, true)
	compiled, rejected, runs := in.BytecodeStats()
	if compiled < 2 || runs < 3 {
		t.Fatalf("expected ≥2 compiled functions and ≥3 runs, got %d/%d", compiled, runs)
	}
	if rejected != 0 {
		t.Fatalf("unexpected rejected functions: %d", rejected)
	}
	// The tree realm must report nothing.
	_, in = runEngine(t, `function a() { return 1; } console.log(a());`, false)
	if _, _, runs := in.BytecodeStats(); runs != 0 {
		t.Fatal("tree realm reported bytecode runs")
	}
}
