package interp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/eventloop"
)

// Options configures a fresh interpreter.
type Options struct {
	// Engine selects the browser cost profile; nil means engine.Uniform().
	Engine *engine.Profile
	// Clock supplies Date.now and the event loop's time; nil means a real
	// clock.
	Clock eventloop.Clock
	// Loop, when non-nil, backs setTimeout. Programs that never call
	// setTimeout can run without one.
	Loop *eventloop.Loop
	// Out receives console.log output; nil discards it.
	Out io.Writer
	// Seed seeds Math.random for reproducible benchmarks.
	Seed uint64
	// Bytecode dispatches resolved function bodies through the flat
	// bytecode engine (internal/bytecode + dispatch.go) instead of the
	// tree-walker. Dynamic code — the global frame, eval'd fragments,
	// unresolved trees, and per-statement escape hatches — always runs on
	// the tree-walker; the two engines are observationally identical.
	Bytecode bool
	// MaxSteps aborts execution with ErrStepBudget once the statement
	// counter exceeds it; 0 means unlimited. Both engines check at the
	// same statement boundaries (the differential fuzz harness depends on
	// budgeted runs not diverging).
	MaxSteps uint64
	// QuantumSteps arms a cooperative scheduling quantum: after that many
	// statements, OnQuantum fires once at the next statement boundary.
	// Unlike MaxSteps this is not an abort — the program keeps running —
	// but the hook typically requests a pause (rt.Pause), so the program
	// parks at its next $suspend point. The supervisor re-arms the
	// quantum before every scheduling turn (ArmQuantum); 0 disables it.
	QuantumSteps uint64
	// OnQuantum is the quantum-expiry hook. It runs on the executing
	// goroutine, at the same statement boundaries where MaxSteps is
	// checked, on both engines.
	OnQuantum func()
	// MemBudget aborts execution with ErrMemLimit once the realm's
	// allocation meter (mem.go) exceeds this many bytes; 0 means unmetered.
	// Checked at the same statement boundaries as MaxSteps, on both
	// engines.
	MemBudget uint64
	// ProfileEvery arms the guest-level sampling profiler (profile.go):
	// every that many statements the JS call stack is sampled and the
	// interval's statement count attributed to it. 0 leaves the profiler
	// off; the stopify_noprof build tag compiles the seam out entirely.
	ProfileEvery uint64
}

// Interp is one JavaScript realm: global environment, builtin prototypes,
// and execution state.
type Interp struct {
	Engine *engine.Profile
	Clock  eventloop.Clock
	Loop   *eventloop.Loop
	Global *Env

	out io.Writer
	rng uint64

	depth    int
	maxDepth int
	atomic   int

	// Steps counts statements executed, used by tests and by the harness to
	// size workloads.
	Steps uint64

	sink uint64 // cost-model spin target; opaque to the optimizer

	// EvalHook compiles source for the eval() builtin. The Stopify core
	// installs a hook that runs the string through the full pipeline (§4.3);
	// without a hook, eval throws.
	EvalHook func(src string) ([]ast.Stmt, error)

	// Uncaught receives exceptions that escape event-loop tasks. When nil,
	// such an exception panics — the moral equivalent of a crashed page.
	Uncaught func(error)

	// retFree recycles returnErr completions. A returnErr is created at
	// exactly one point (the return statement) and consumed at exactly one
	// (the Call boundary that translates it to a value), so the freelist's
	// push happens only once the object is provably unreachable.
	retFree []*returnErr

	// argArena is the stack-disciplined argument buffer evalArgs carves
	// call argument slices from (expr.go).
	argArena []Value

	// Frame pools for NoCapture functions (env.go): frames the resolver
	// proved unescapable are recycled here instead of garbage-collected —
	// one freelist per inline-storage size class, plus size-bucketed
	// freelists for the big layouts (17–256 slots) of arguments-heavy
	// instrumented functions.
	envFree6   []*envBuf6
	envFree16  []*envBuf16
	envFreeBig [len(bigBucketCaps)][]*Env

	// Inline caches, indexed by the site IDs internal/resolve assigns
	// (shape.go). Owned per realm so two interpreters executing the same
	// resolved tree never observe each other's cache state.
	icGet    icArray[getIC]
	icSet    icArray[setIC]
	icGlobal icArray[*cell]

	// Bytecode engine state (dispatch.go): the per-realm chunk cache
	// (nil entry = compiler rejected the function), the operand-stack
	// arena, and counters reporting what actually ran.
	bytecode   bool
	maxSteps   uint64
	quantumEnd uint64 // Steps value at which onQuantum fires; 0 = disarmed
	stepLimit  uint64 // min(maxSteps, quantumEnd-1); MaxUint64 = no check armed
	memUsed    uint64 // bytes charged by the allocation meter (mem.go)
	memBudget  uint64 // allocation budget; 0 = unmetered
	onQuantum  func()
	prof       *profState // sampling profiler; nil = disarmed (profile.go)
	chunks     map[*ast.Func]*chunk
	vmStack    []Value
	chunkFuncs int
	chunkFails int
	chunkRuns  uint64

	objectProto   *Object
	functionProto *Object
	arrayProto    *Object
	stringProto   *Object
	numberProto   *Object
	booleanProto  *Object
	errorProto    *Object
	dateProto     *Object

	// Raw-path timer ledger: setTimeout hands out monotonically increasing
	// IDs and clearTimeout marks them dead before they fire. The stopified
	// path shadows both globals with rt's ledgered versions, which keep an
	// identical ID sequence so raw and stopified output stay byte-equal.
	timerSeq  uint64
	timerDead map[uint64]bool
}

// New creates an interpreter with a fresh global environment.
func New(opts Options) *Interp {
	if opts.Engine == nil {
		opts.Engine = engine.Uniform()
	}
	if opts.Clock == nil {
		opts.Clock = eventloop.NewRealClock()
	}
	in := &Interp{
		Engine:    opts.Engine,
		Clock:     opts.Clock,
		Loop:      opts.Loop,
		out:       opts.Out,
		rng:       opts.Seed*2862933555777941757 + 3037000493,
		maxDepth:  opts.Engine.MaxStack,
		bytecode:  opts.Bytecode,
		maxSteps:  opts.MaxSteps,
		memBudget: opts.MemBudget,
		onQuantum: opts.OnQuantum,
	}
	if opts.QuantumSteps > 0 {
		in.quantumEnd = opts.QuantumSteps
	}
	if profSeam && opts.ProfileEvery > 0 {
		in.StartProfile(opts.ProfileEvery)
	}
	in.recomputeStepLimit()
	in.Global = NewEnv(nil)
	in.setupGlobals()
	return in
}

// recomputeStepLimit folds the three statement-boundary triggers — the hard
// MaxSteps abort, the soft quantum hook, and the allocation meter — into one
// threshold so the hot path stays a single compare (see stepBoundary).
// Disabled is MaxUint64, not 0: Steps can never exceed it, and 0 must remain
// a *live* threshold — ArmQuantum(1) means "fire at the very next
// statement", which is stepLimit 0 with the check `Steps > stepLimit`. An
// over-budget meter pins the threshold at 0 so nothing (quantum re-arm
// across a resume, SetMaxSteps) can slide the boundary check past a pending
// ErrMemLimit.
func (in *Interp) recomputeStepLimit() {
	if in.memBudget != 0 && in.memUsed > in.memBudget {
		in.stepLimit = 0
		return
	}
	lim := ^uint64(0)
	if in.maxSteps != 0 {
		lim = in.maxSteps
	}
	if in.quantumEnd != 0 && in.quantumEnd-1 < lim {
		lim = in.quantumEnd - 1
	}
	if profSeam && in.prof != nil && in.prof.next != 0 && in.prof.next-1 < lim {
		lim = in.prof.next - 1
	}
	in.stepLimit = lim
}

// stepBoundary is the cold half of the statement-boundary check: it runs
// only when Steps has passed stepLimit and decides which trigger fired.
// The quantum hook is one-shot — it disarms before firing so a hook that
// does not re-arm (ArmQuantum) fires exactly once.
func (in *Interp) stepBoundary() error {
	if in.memBudget != 0 && in.memUsed > in.memBudget {
		return ErrMemLimit
	}
	if in.maxSteps != 0 && in.Steps > in.maxSteps {
		return ErrStepBudget
	}
	if profSeam && in.prof != nil && in.prof.next != 0 && in.Steps >= in.prof.next {
		in.profSample() // every exit path below recomputes stepLimit
	}
	if in.quantumEnd != 0 && in.Steps >= in.quantumEnd {
		in.quantumEnd = 0
		in.recomputeStepLimit()
		if in.onQuantum != nil {
			in.onQuantum() // may re-arm via ArmQuantum
		}
		return nil
	}
	in.recomputeStepLimit()
	return nil
}

// ArmQuantum schedules the OnQuantum hook to fire at the statement boundary
// where Steps first reaches its current value plus n; n == 0 disarms. Must
// be called from the executing goroutine (between event-loop turns, or from
// the hook itself) — the supervisor arms it at the top of every scheduling
// turn it hands a guest.
func (in *Interp) ArmQuantum(n uint64) {
	if n == 0 {
		in.quantumEnd = 0
	} else {
		in.quantumEnd = in.Steps + n
	}
	in.recomputeStepLimit()
}

// SetOnQuantum installs the quantum-expiry hook (executing goroutine only).
func (in *Interp) SetOnQuantum(fn func()) { in.onQuantum = fn }

// SetMaxSteps re-arms the hard step budget relative to zero — the counter is
// cumulative, so extending a budget across resumes means raising the
// absolute ceiling. 0 removes the limit. Executing goroutine only.
func (in *Interp) SetMaxSteps(n uint64) {
	in.maxSteps = n
	in.recomputeStepLimit()
}

// charge consumes work units according to the engine profile. The loop body
// is a data dependency on in.sink so the compiler cannot remove it.
func (in *Interp) charge(units int) {
	n := units * in.Engine.Speed
	s := in.sink
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
	}
	in.sink = s
}

// Depth reports the current JavaScript call depth; the Stopify runtime's
// deep-stack mode reads it (DESIGN.md §4.5).
func (in *Interp) Depth() int { return in.depth }

// EnterAtomic marks the start of a native section that calls back into
// JavaScript (Array.prototype.sort's comparator, map's callback, ...).
// Continuations cannot unwind through a native Go frame, so the Stopify
// runtime defers suspension while any atomic section is active — the same
// reason real Stopify instruments runtime-library JavaScript instead of
// using native helpers (§6.4).
func (in *Interp) EnterAtomic() { in.atomic++ }

// ExitAtomic ends a native callback section.
func (in *Interp) ExitAtomic() { in.atomic-- }

// InAtomic reports whether a native callback section is active.
func (in *Interp) InAtomic() bool { return in.atomic > 0 }

// MaxDepth reports the engine's stack limit.
func (in *Interp) MaxDepth() int { return in.maxDepth }

// Throw builds a Thrown error carrying a fresh Error object.
func (in *Interp) Throw(name, format string, args ...interface{}) error {
	return &Thrown{Value: ObjectValue(in.NewError(name, fmt.Sprintf(format, args...)))}
}

// NewError builds an Error object with the given name and message.
func (in *Interp) NewError(name, message string) *Object {
	in.chargeMem(memObjectBytes + 2*memPropBytes + len(name) + len(message))
	e := &Object{Class: "Error", Proto: in.errorProto}
	e.SetOwn("name", StringValue(name))
	e.SetOwn("message", StringValue(message))
	return e
}

// RunProgram hoists and executes a program in the global environment.
func (in *Interp) RunProgram(prog *ast.Program) error {
	in.hoistInto(prog.Body, in.Global)
	return in.execStmts(prog.Body, in.Global)
}

// RunString parses nothing — callers parse; this executes pre-parsed
// statements in the global environment (used by eval and the REPL).
func (in *Interp) RunStmts(body []ast.Stmt) error {
	in.hoistInto(body, in.Global)
	return in.execStmts(body, in.Global)
}

// DefineGlobal installs a global binding (used by the Stopify runtime to
// expose its primitives).
func (in *Interp) DefineGlobal(name string, v Value) { in.Global.Define(name, v) }

// NewNative wraps a Go function as a callable JS object.
func (in *Interp) NewNative(name string, fn NativeFunc) *Object {
	in.chargeMem(memObjectBytes)
	return &Object{Class: "Function", Proto: in.functionProto, Native: fn, NativeName: name}
}

// NewArray builds an array object around elems (not copied). The meter
// charges the element storage by capacity, so every builtin that returns a
// fresh array (slice, map, concat, split, ...) is metered here without a
// per-site charge.
func (in *Interp) NewArray(elems []Value) *Object {
	in.chargeMem(memObjectBytes + memValueBytes*cap(elems))
	return &Object{Class: "Array", Proto: in.arrayProto, Elems: elems}
}

// NewPlainObject builds an empty object with Object.prototype.
func (in *Interp) NewPlainObject() *Object {
	in.chargeMem(memObjectBytes)
	return NewObject(in.objectProto)
}

// ---------------------------------------------------------------------------
// Hoisting
// ---------------------------------------------------------------------------

type hoistInfo struct {
	vars []string
	fns  []*ast.Func
}

// hoistScan collects var and function declarations without descending into
// nested functions. The scan itself lives in the ast package so the static
// resolver hoists by exactly the same rule.
func hoistScan(body []ast.Stmt) *hoistInfo {
	vars, fns := ast.HoistedDecls(body)
	return &hoistInfo{vars: vars, fns: fns}
}

// hoistInto predeclares vars (undefined) and function declarations in env.
func (in *Interp) hoistInto(body []ast.Stmt, env *Env) {
	h := hoistScan(body)
	for _, name := range h.vars {
		if !env.Has(name) {
			env.Define(name, Undefined)
		}
	}
	for _, fn := range h.fns {
		env.Define(fn.Name, ObjectValue(in.makeFunction(fn, env)))
	}
}

// funcObject co-locates a function object with its closure so creating one
// is a single allocation — instrumented code creates closures on every
// call (frame thunks), making this the hottest allocation site after
// environments.
type funcObject struct {
	obj Object
	fn  Closure
}

// makeFunction builds a function object for a literal in env. Closures
// allocate, so they are charged like other allocations — this is what makes
// closure-per-call continuation representations (CPS, generators) pay their
// real cost relative to checked returns.
//
// The captured environment chain is marked escaped so the frame pool never
// recycles a frame this closure can still see. Marking stops at the first
// already-escaped frame: escape marking always walks the full chain, so an
// escaped frame implies escaped ancestors.
func (in *Interp) makeFunction(fn *ast.Func, env *Env) *Object {
	for e := env; e != nil && !e.escaped; e = e.parent {
		e.escaped = true
	}
	in.charge(in.Engine.ObjectCreateCost)
	in.chargeMem(memFuncBytes)
	p := new(funcObject)
	p.obj = Object{Class: "Function", Proto: in.functionProto, Fn: &p.fn}
	p.fn = Closure{Decl: fn, Env: env, Self: &p.obj}
	// .length is materialized lazily on first access (objGet), like
	// .prototype, so creating a closure allocates no property storage.
	return &p.obj
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (in *Interp) execStmts(body []ast.Stmt, env *Env) error {
	for _, s := range body {
		if err := in.execStmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(s ast.Stmt, env *Env) error {
	in.Steps++
	in.charge(1)
	if in.Steps > in.stepLimit {
		if err := in.stepBoundary(); err != nil {
			return err
		}
	}
	// Hot statement kinds first: instrumented code is mostly expression
	// statements under mode-dispatch ifs.
	switch n := s.(type) {
	case *ast.ExprStmt:
		_, err := in.eval(n.X, env)
		return err
	case *ast.If:
		in.charge(in.Engine.BranchCost)
		t, err := in.eval(n.Test, env)
		if err != nil {
			return err
		}
		if ToBoolean(t) {
			return in.execStmt(n.Cons, env)
		}
		if n.Alt != nil {
			return in.execStmt(n.Alt, env)
		}
		return nil
	case *ast.Return:
		v := Undefined
		if n.Arg != nil {
			var err error
			v, err = in.eval(n.Arg, env)
			if err != nil {
				return err
			}
		}
		return in.newReturn(v)
	case *ast.VarDecl:
		for i := range n.Decls {
			d := &n.Decls[i]
			if d.Ref.Valid() {
				// The binding was hoisted into a slot frame; with no
				// initializer there is nothing to do (the slot is already
				// undefined, and re-executing `var x` must not reset it).
				if d.Init != nil {
					v, err := in.eval(d.Init, env)
					if err != nil {
						return err
					}
					env.SetRef(d.Ref, v)
				}
				continue
			}
			if d.Init == nil {
				if !env.Has(d.Name) && !envChainHas(env, d.Name) {
					env.Define(d.Name, Undefined)
				}
				continue
			}
			v, err := in.eval(d.Init, env)
			if err != nil {
				return err
			}
			if !env.Set(d.Name, v) {
				env.Define(d.Name, v)
			}
		}
		return nil
	case *ast.Block:
		return in.execStmts(n.Body, env)
	case *ast.While:
		return in.execWhile(n, env, nil)
	case *ast.DoWhile:
		return in.execDoWhile(n, env, nil)
	case *ast.For:
		return in.execFor(n, env, nil)
	case *ast.ForIn:
		return in.execForIn(n, env, nil)
	case *ast.Break:
		if n.Label == "" {
			return breakUnlabeled
		}
		return &breakErr{label: n.Label}
	case *ast.Continue:
		if n.Label == "" {
			return continueUnlabeled
		}
		return &continueErr{label: n.Label}
	case *ast.Labeled:
		return in.execLabeled(n, env)
	case *ast.Switch:
		return in.execSwitch(n, env)
	case *ast.Throw:
		v, err := in.eval(n.Arg, env)
		if err != nil {
			return err
		}
		in.charge(in.Engine.ThrowCost)
		return &Thrown{Value: v}
	case *ast.Try:
		return in.execTry(n, env)
	case *ast.FuncDecl:
		// Handled by hoisting; re-executing is a no-op, but if hoisting was
		// bypassed (eval'd fragments), define it now.
		if !envChainHas(env, n.Fn.Name) {
			env.Define(n.Fn.Name, ObjectValue(in.makeFunction(n.Fn, env)))
		}
		return nil
	case *ast.Empty:
		return nil
	}
	return fmt.Errorf("interp: unknown statement %T", s)
}

// newReturn builds a return completion, reusing a recycled one when
// available.
func (in *Interp) newReturn(v Value) *returnErr {
	if n := len(in.retFree); n > 0 {
		re := in.retFree[n-1]
		in.retFree = in.retFree[:n-1]
		re.value = v
		return re
	}
	return &returnErr{value: v}
}

func envChainHas(env *Env, name string) bool {
	_, ok := env.Lookup(name)
	return ok
}

func hasLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// loopIterDone interprets a loop body completion: it consumes continue/break
// aimed at this loop (labels includes the loop's labels) and reports
// (stop, err).
func loopIterDone(err error, labels []string) (bool, error) {
	switch e := err.(type) {
	case nil:
		return false, nil
	case *continueErr:
		if e.label == "" || hasLabel(labels, e.label) {
			return false, nil
		}
		return true, err
	case *breakErr:
		if e.label == "" || hasLabel(labels, e.label) {
			return true, nil
		}
		return true, err
	default:
		return true, err
	}
}

func (in *Interp) execWhile(n *ast.While, env *Env, labels []string) error {
	for {
		t, err := in.eval(n.Test, env)
		if err != nil {
			return err
		}
		if !ToBoolean(t) {
			return nil
		}
		stop, err := loopIterDone(in.execStmt(n.Body, env), labels)
		if stop {
			return err
		}
	}
}

func (in *Interp) execDoWhile(n *ast.DoWhile, env *Env, labels []string) error {
	for {
		stop, err := loopIterDone(in.execStmt(n.Body, env), labels)
		if stop {
			return err
		}
		t, err := in.eval(n.Test, env)
		if err != nil {
			return err
		}
		if !ToBoolean(t) {
			return nil
		}
	}
}

func (in *Interp) execFor(n *ast.For, env *Env, labels []string) error {
	if n.Init != nil {
		if err := in.execStmt(n.Init, env); err != nil {
			return err
		}
	}
	for {
		if n.Test != nil {
			t, err := in.eval(n.Test, env)
			if err != nil {
				return err
			}
			if !ToBoolean(t) {
				return nil
			}
		}
		stop, err := loopIterDone(in.execStmt(n.Body, env), labels)
		if stop {
			return err
		}
		if n.Update != nil {
			if _, err := in.eval(n.Update, env); err != nil {
				return err
			}
		}
	}
}

func (in *Interp) execForIn(n *ast.ForIn, env *Env, labels []string) error {
	obj, err := in.eval(n.Obj, env)
	if err != nil {
		return err
	}
	o := obj.Obj()
	if o == nil {
		return nil // primitives enumerate nothing we support
	}
	if !n.Ref.Valid() && n.Decl && !envChainHas(env, n.Name) {
		env.Define(n.Name, Undefined)
	}
	for _, key := range o.OwnKeys() {
		kv := StringValue(key)
		if n.Ref.Valid() {
			env.SetRef(n.Ref, kv)
		} else if !env.Set(n.Name, kv) {
			// Undeclared loop variable: implicit global, as in non-strict
			// JS (and as storeIdent does for plain assignments).
			env.Root().Define(n.Name, kv)
		}
		stop, err := loopIterDone(in.execStmt(n.Body, env), labels)
		if stop {
			return err
		}
	}
	return nil
}

func (in *Interp) execLabeled(n *ast.Labeled, env *Env) error {
	labels := []string{n.Label}
	body := n.Body
	for {
		inner, ok := body.(*ast.Labeled)
		if !ok {
			break
		}
		labels = append(labels, inner.Label)
		body = inner.Body
	}
	var err error
	switch b := body.(type) {
	case *ast.While:
		err = in.execWhile(b, env, labels)
	case *ast.DoWhile:
		err = in.execDoWhile(b, env, labels)
	case *ast.For:
		err = in.execFor(b, env, labels)
	case *ast.ForIn:
		err = in.execForIn(b, env, labels)
	default:
		err = in.execStmt(body, env)
	}
	if be, ok := err.(*breakErr); ok && hasLabel(labels, be.label) {
		return nil
	}
	return err
}

func (in *Interp) execSwitch(n *ast.Switch, env *Env) error {
	disc, err := in.eval(n.Disc, env)
	if err != nil {
		return err
	}
	match := -1
	defaultIdx := -1
	for i, c := range n.Cases {
		if c.Test == nil {
			defaultIdx = i
			continue
		}
		tv, err := in.eval(c.Test, env)
		if err != nil {
			return err
		}
		if StrictEquals(disc, tv) {
			match = i
			break
		}
	}
	if match < 0 {
		match = defaultIdx
	}
	if match < 0 {
		return nil
	}
	for i := match; i < len(n.Cases); i++ {
		for _, s := range n.Cases[i].Body {
			err := in.execStmt(s, env)
			if be, ok := err.(*breakErr); ok && be.label == "" {
				return nil
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func (in *Interp) execTry(n *ast.Try, env *Env) error {
	in.charge(in.Engine.TryCost)
	err := in.execStmts(n.Block.Body, env)
	if t, ok := err.(*Thrown); ok && n.Catch != nil {
		var cenv *Env
		if n.CatchScope != nil {
			cenv = NewSlotEnv(env, n.CatchScope)
			cenv.slots[0] = t.Value
		} else {
			cenv = NewEnv(env)
			cenv.Define(n.CatchParam, t.Value)
		}
		err = in.execStmts(n.Catch.Body, cenv)
	}
	if n.Finally != nil {
		if ferr := in.execStmts(n.Finally.Body, env); ferr != nil {
			return ferr // an abrupt finally completion wins
		}
	}
	return err
}

// WriteOut emits console output.
func (in *Interp) WriteOut(s string) {
	if in.out != nil {
		io.WriteString(in.out, s)
	}
}

// Random returns the next Math.random value from the seeded generator
// (xorshift64*), in [0, 1).
func (in *Interp) Random() float64 {
	x := in.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.rng = x
	return float64(x*2685821657736338717>>11) / float64(uint64(1)<<53)
}

// FormatThrown renders a thrown error for host display.
func FormatThrown(t *Thrown) string {
	var b strings.Builder
	b.WriteString(t.Error())
	return b.String()
}
