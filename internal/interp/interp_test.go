package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/parser"
)

// run executes src and returns console output.
func run(t *testing.T, src string) string {
	t.Helper()
	out, err := tryRun(src)
	if err != nil {
		t.Fatalf("run(%q): %v", src, err)
	}
	return out
}

func tryRun(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	in := New(Options{Out: &buf, Clock: eventloop.NewVirtualClock(), Seed: 1})
	if err := in.RunProgram(prog); err != nil {
		return buf.String(), err
	}
	return buf.String(), nil
}

// expect asserts that the program prints exactly the given lines.
func expect(t *testing.T, src string, lines ...string) {
	t.Helper()
	got := run(t, src)
	want := strings.Join(lines, "\n")
	if len(lines) > 0 {
		want += "\n"
	}
	if got != want {
		t.Errorf("program %q\n got: %q\nwant: %q", src, got, want)
	}
}

func TestArithmetic(t *testing.T) {
	expect(t, "console.log(1 + 2 * 3);", "7")
	expect(t, "console.log(10 / 4);", "2.5")
	expect(t, "console.log(7 % 3);", "1")
	expect(t, "console.log(-7 % 3);", "-1")
	expect(t, "console.log(2 ** 10);", "1024")
	expect(t, "console.log(0.1 + 0.2 === 0.3);", "false")
	expect(t, "console.log(1 / 0);", "Infinity")
	expect(t, "console.log(-1 / 0);", "-Infinity")
	expect(t, "console.log(0 / 0);", "NaN")
}

func TestStringConcatAndCoercion(t *testing.T) {
	expect(t, `console.log("a" + "b");`, "ab")
	expect(t, `console.log("x" + 1);`, "x1")
	expect(t, `console.log(1 + "2");`, "12")
	expect(t, `console.log("3" * "4");`, "12")
	expect(t, `console.log("3" - 1);`, "2")
	expect(t, `console.log("a" - 1);`, "NaN")
	expect(t, `console.log(true + 1);`, "2")
	expect(t, `console.log(null + 1);`, "1")
	expect(t, `console.log(undefined + 1);`, "NaN")
}

func TestComparisons(t *testing.T) {
	expect(t, "console.log(1 < 2, 2 <= 2, 3 > 4, 4 >= 4);", "true true false true")
	expect(t, `console.log("a" < "b", "b" < "a");`, "true false")
	expect(t, "console.log(NaN < 1, NaN >= 1);", "false false")
	expect(t, "console.log(1 == '1', 1 === '1');", "true false")
	expect(t, "console.log(null == undefined, null === undefined);", "true false")
	expect(t, "console.log(NaN == NaN);", "false")
	expect(t, "console.log(null == 0);", "false")
}

func TestBitwise(t *testing.T) {
	expect(t, "console.log(5 & 3, 5 | 3, 5 ^ 3);", "1 7 6")
	expect(t, "console.log(1 << 4, 256 >> 2, -1 >>> 28);", "16 64 15")
	expect(t, "console.log(~5);", "-6")
	expect(t, "console.log(2147483648 | 0);", "-2147483648")
	expect(t, "console.log(4294967296 | 0);", "0")
	expect(t, "console.log(3.7 | 0, -3.7 | 0);", "3 -3")
}

func TestVariablesAndScope(t *testing.T) {
	expect(t, "var x = 1; x = x + 1; console.log(x);", "2")
	expect(t, `
function f() { var x = 10; function g() { return x + 1; } return g(); }
console.log(f());`, "11")
	expect(t, `
var x = "global";
function f() { var x = "local"; return x; }
console.log(f(), x);`, "local global")
	// Hoisting: use before declaration yields undefined.
	expect(t, "console.log(typeof y); var y = 3;", "undefined")
	// Function hoisting: callable before declaration.
	expect(t, "console.log(f()); function f() { return 42; }", "42")
}

func TestClosures(t *testing.T) {
	expect(t, `
function counter() { var n = 0; return function () { n = n + 1; return n; }; }
var c = counter();
c(); c();
console.log(c());`, "3")
	expect(t, `
var fs = [];
for (var i = 0; i < 3; i++) { (function (j) { fs.push(function () { return j; }); })(i); }
console.log(fs[0](), fs[1](), fs[2]());`, "0 1 2")
	// var is function-scoped: all closures see the final value.
	expect(t, `
var fs = [];
for (var i = 0; i < 3; i++) { fs.push(function () { return i; }); }
console.log(fs[0](), fs[1](), fs[2]());`, "3 3 3")
}

func TestRecursion(t *testing.T) {
	expect(t, `
function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
console.log(fib(15));`, "610")
	expect(t, `
function fact(n) { if (n <= 1) return 1; return n * fact(n - 1); }
console.log(fact(10));`, "3628800")
}

func TestNamedFunctionExpression(t *testing.T) {
	expect(t, `
var f = function rec(n) { return n <= 0 ? 0 : n + rec(n - 1); };
console.log(f(4));`, "10")
}

func TestObjectsAndPrototypes(t *testing.T) {
	expect(t, `
var o = { a: 1, b: { c: 2 } };
console.log(o.a, o.b.c, o["a"]);`, "1 2 1")
	expect(t, `
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
var p = new Point(3, 4);
console.log(p.norm2(), p instanceof Point);`, "25 true")
	expect(t, `
function A() {}
function B() {}
B.prototype = Object.create(A.prototype);
var b = new B();
console.log(b instanceof B, b instanceof A, b instanceof Object);`, "true true true")
	expect(t, `
var base = { greet: function () { return "hi " + this.name; } };
var derived = Object.create(base);
derived.name = "bob";
console.log(derived.greet());`, "hi bob")
}

func TestConstructorReturnValues(t *testing.T) {
	// A constructor returning an object overrides `this`.
	expect(t, `
function F() { this.a = 1; return { a: 2 }; }
console.log(new F().a);`, "2")
	// Returning a primitive keeps `this`.
	expect(t, `
function G() { this.a = 3; return 7; }
console.log(new G().a);`, "3")
}

func TestNewTarget(t *testing.T) {
	expect(t, `
function F() { return new.target !== undefined; }
console.log(F(), new F() instanceof F);`, "false true")
}

func TestGettersSetters(t *testing.T) {
	expect(t, `
var o = { _x: 1, get x() { return this._x * 2; }, set x(v) { this._x = v + 10; } };
console.log(o.x);
o.x = 5;
console.log(o.x, o._x);`, "2", "30 15")
	expect(t, `
var o = {};
Object.defineProperty(o, "y", { get: function () { return 99; } });
console.log(o.y);`, "99")
	// Setter inherited through the prototype chain is invoked.
	expect(t, `
var proto = { set p(v) { this.stored = v * 2; } };
var o = Object.create(proto);
o.p = 21;
console.log(o.stored);`, "42")
}

func TestArguments(t *testing.T) {
	expect(t, `
function f() { return arguments.length; }
console.log(f(), f(1), f(1, 2, 3));`, "0 1 3")
	expect(t, `
function sum() {
  var t = 0;
  for (var i = 0; i < arguments.length; i++) t += arguments[i];
  return t;
}
console.log(sum(1, 2, 3, 4));`, "10")
	expect(t, `
function f(a, b) { return b; }
console.log(f(1));`, "undefined")
}

func TestApplyCallBind(t *testing.T) {
	expect(t, `
function f(a, b) { return this.base + a + b; }
console.log(f.call({ base: 10 }, 1, 2));
console.log(f.apply({ base: 20 }, [3, 4]));
var g = f.bind({ base: 30 }, 5);
console.log(g(6));`, "13", "27", "41")
}

func TestArrays(t *testing.T) {
	expect(t, `
var a = [1, 2, 3];
a.push(4);
console.log(a.length, a[3], a.pop(), a.length);`, "4 4 4 3")
	expect(t, `
var a = [];
a[4] = 9;
console.log(a.length, a[0], a[4]);`, "5 undefined 9")
	expect(t, `
var a = [3, 1, 2];
a.sort(function (x, y) { return x - y; });
console.log(a.join("-"));`, "1-2-3")
	expect(t, `
var a = [1, 2, 3, 4, 5];
console.log(a.slice(1, 3).join(","), a.indexOf(4), a.concat([6]).length);`, "2,3 3 6")
	expect(t, `
var a = new Array(3);
console.log(a.length, Array.isArray(a), Array.isArray({}));`, "3 true false")
	expect(t, `
var a = [1, 2, 3];
a.length = 1;
console.log(a.join(","));`, "1")
	expect(t, `
console.log([1, [2, 3]].toString());`, "1,2,3")
	expect(t, `
var a = [1, 2, 3, 4];
var r = a.splice(1, 2, 9);
console.log(a.join(","), r.join(","));`, "1,9,4 2,3")
}

func TestArrayHigherOrder(t *testing.T) {
	expect(t, `
var a = [1, 2, 3];
console.log(a.map(function (x) { return x * 2; }).join(","));
console.log(a.filter(function (x) { return x !== 2; }).join(","));
console.log(a.reduce(function (s, x) { return s + x; }, 0));`, "2,4,6", "1,3", "6")
}

func TestStrings(t *testing.T) {
	expect(t, `
var s = "hello world";
console.log(s.length, s.charAt(1), s.charCodeAt(0), s.indexOf("world"));`, "11 e 104 6")
	expect(t, `
console.log("a,b,c".split(",").length, "AbC".toUpperCase(), "AbC".toLowerCase());`, "3 ABC abc")
	expect(t, `
console.log("hello".substring(1, 3), "hello".slice(-3), "  x  ".trim());`, "el llo x")
	expect(t, `
console.log(String.fromCharCode(72, 105), "ab".repeat(3));`, "Hi ababab")
	expect(t, `
console.log("s"[0], "str".length);`, "s 3")
	expect(t, `
console.log("a-b-a".replace("a", "X"));`, "X-b-a")
}

func TestControlFlow(t *testing.T) {
	expect(t, `
var s = 0;
for (var i = 0; i < 10; i++) { if (i % 2 === 0) continue; s += i; }
console.log(s);`, "25")
	expect(t, `
var i = 0;
while (true) { i++; if (i >= 5) break; }
console.log(i);`, "5")
	expect(t, `
var n = 0;
do { n++; } while (n < 3);
console.log(n);`, "3")
	expect(t, `
outer:
for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 3; j++) {
    if (j === 1) continue outer;
    if (i === 2) break outer;
    console.log(i, j);
  }
}`, "0 0", "1 0")
}

func TestSwitch(t *testing.T) {
	expect(t, `
function f(x) {
  switch (x) {
    case 1: return "one";
    case 2: case 3: return "few";
    default: return "many";
  }
}
console.log(f(1), f(2), f(3), f(9));`, "one few few many")
	// Fallthrough without break.
	expect(t, `
var log = [];
switch (2) {
  case 1: log.push("a");
  case 2: log.push("b");
  case 3: log.push("c"); break;
  case 4: log.push("d");
}
console.log(log.join(""));`, "bc")
	// Default in the middle still runs on no match.
	expect(t, `
var log = [];
switch (42) {
  case 1: log.push("a"); break;
  default: log.push("dflt");
  case 2: log.push("b");
}
console.log(log.join(","));`, "dflt,b")
}

func TestForIn(t *testing.T) {
	expect(t, `
var o = { a: 1, b: 2, c: 3 };
var ks = [];
for (var k in o) ks.push(k);
console.log(ks.join(","));`, "a,b,c")
	expect(t, `
var a = [10, 20];
var ks = [];
for (var k in a) ks.push(k);
console.log(ks.join(","));`, "0,1")
}

func TestExceptions(t *testing.T) {
	expect(t, `
try { throw new Error("boom"); } catch (e) { console.log(e.message); }`, "boom")
	expect(t, `
try { null.x; } catch (e) { console.log(e.name); }`, "TypeError")
	expect(t, `
try { undefinedVariable; } catch (e) { console.log(e.name); }`, "ReferenceError")
	expect(t, `
function f() { throw "str"; }
try { f(); } catch (e) { console.log(typeof e, e); }`, "string str")
	expect(t, `
var log = [];
try { log.push("t"); throw 1; } catch (e) { log.push("c"); } finally { log.push("f"); }
console.log(log.join(""));`, "tcf")
	expect(t, `
function f() {
  try { return "try"; } finally { console.log("finally runs"); }
}
console.log(f());`, "finally runs", "try")
	// Exception propagates through nested frames.
	expect(t, `
function a() { b(); } function b() { c(); } function c() { throw new Error("deep"); }
try { a(); } catch (e) { console.log(e.message); }`, "deep")
	// finally overrides with its own completion.
	expect(t, `
function f() { try { throw 1; } finally { return "override"; } }
console.log(f());`, "override")
}

func TestUncaughtError(t *testing.T) {
	_, err := tryRun("throw new TypeError('top');")
	thrown, ok := err.(*Thrown)
	if !ok {
		t.Fatalf("want *Thrown, got %v", err)
	}
	if got := thrown.Error(); !strings.Contains(got, "top") {
		t.Errorf("thrown message: %q", got)
	}
}

func TestImplicitValueOfToString(t *testing.T) {
	expect(t, `
var o = { valueOf: function () { return 41; } };
console.log(o + 1, o * 2, o < 100);`, "42 82 true")
	expect(t, `
var o = { toString: function () { return "obj"; } };
console.log("<" + o + ">");`, "<obj>")
	expect(t, `
var o = { valueOf: function () { return 2; }, toString: function () { return "t"; } };
console.log(o + "");`, "2")
}

func TestTypeof(t *testing.T) {
	expect(t, `console.log(typeof undefined, typeof null, typeof 1, typeof "s", typeof true, typeof {}, typeof function(){});`,
		"undefined object number string boolean object function")
	expect(t, "console.log(typeof notDefinedAnywhere);", "undefined")
}

func TestDeleteAndIn(t *testing.T) {
	expect(t, `
var o = { a: 1, b: 2 };
delete o.a;
console.log("a" in o, "b" in o);`, "false true")
	expect(t, `
var a = [1];
console.log(0 in a, 1 in a, "length" in a);`, "true false true")
}

func TestUpdateExpressions(t *testing.T) {
	expect(t, `
var x = 5;
console.log(x++, x, ++x, x);`, "5 6 7 7")
	expect(t, `
var o = { n: 1 };
o.n++; ++o.n;
console.log(o.n);`, "3")
	expect(t, `
var a = [1];
a[0]--;
console.log(a[0]);`, "0")
	expect(t, `
var s = "4";
s++;
console.log(s, typeof s);`, "5 number")
}

func TestTernaryAndLogical(t *testing.T) {
	expect(t, `console.log(1 ? "y" : "n", 0 ? "y" : "n");`, "y n")
	expect(t, `console.log(null || "fallback", 0 && f());`, "fallback 0")
	expect(t, `console.log("" || 0 || "third");`, "third")
	// Short-circuit does not evaluate the right side.
	expect(t, `
var called = false;
function f() { called = true; return 1; }
var r = false && f();
console.log(called);`, "false")
}

func TestArrowFunctions(t *testing.T) {
	expect(t, `
var add = (a, b) => a + b;
console.log(add(2, 3));`, "5")
	// Arrows capture lexical this.
	expect(t, `
function Box(v) {
  this.v = v;
  var self = (k) => this.v + k;
  this.get = self;
}
var b = new Box(10);
console.log(b.get(5));`, "15")
	// Arrows see the enclosing function's arguments object.
	expect(t, `
function f() { var g = () => arguments.length; return g(); }
console.log(f(1, 2, 3));`, "3")
}

func TestStackOverflow(t *testing.T) {
	prog, err := parser.Parse("function f() { return f(); } f();")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Options{Engine: &engine.Profile{Name: "tiny", Speed: 1, MaxStack: 50}})
	rerr := in.RunProgram(prog)
	thrown, ok := rerr.(*Thrown)
	if !ok {
		t.Fatalf("want RangeError, got %v", rerr)
	}
	if !strings.Contains(thrown.Error(), "RangeError") {
		t.Errorf("want RangeError, got %v", thrown.Error())
	}
	if in.Depth() != 0 {
		t.Errorf("depth should unwind to 0, got %d", in.Depth())
	}
}

func TestSetTimeoutOrdering(t *testing.T) {
	clock := eventloop.NewVirtualClock()
	loop := eventloop.New(clock)
	var buf bytes.Buffer
	in := New(Options{Out: &buf, Clock: clock, Loop: loop})
	prog, err := parser.Parse(`
setTimeout(function () { console.log("b"); }, 10);
setTimeout(function () { console.log("a"); }, 0);
console.log("sync");`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	want := "sync\na\nb\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
}

func TestMathBuiltins(t *testing.T) {
	expect(t, "console.log(Math.floor(3.7), Math.ceil(3.2), Math.abs(-5), Math.sqrt(16));", "3 4 5 4")
	expect(t, "console.log(Math.max(1, 9, 4), Math.min(2, -3), Math.pow(2, 8));", "9 -3 256")
	expect(t, "console.log(Math.round(2.5), Math.round(-2.5), Math.trunc(-3.9));", "3 -2 -3")
	expect(t, "var r = Math.random(); console.log(r >= 0 && r < 1);", "true")
}

func TestMathRandomSeeded(t *testing.T) {
	out1, err := tryRun("console.log(Math.random(), Math.random());")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := tryRun("console.log(Math.random(), Math.random());")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Errorf("seeded Math.random must be deterministic: %q vs %q", out1, out2)
	}
}

func TestParseIntFloat(t *testing.T) {
	expect(t, `console.log(parseInt("42"), parseInt("0x1f"), parseInt("12px"), parseInt("z"));`, "42 31 12 NaN")
	expect(t, `console.log(parseInt("101", 2), parseInt("-17"));`, "5 -17")
	expect(t, `console.log(parseFloat("3.5abc"), parseFloat("1e2"));`, "3.5 100")
	expect(t, `console.log(isNaN("x"), isNaN("3"), isFinite(1), isFinite(1/0));`, "true false true false")
}

func TestNumberMethods(t *testing.T) {
	expect(t, "console.log((255).toString(16), (255).toString(2));", "ff 11111111")
	expect(t, "console.log((3.14159).toFixed(2));", "3.14")
}

func TestDateNow(t *testing.T) {
	clock := eventloop.NewVirtualClock()
	var buf bytes.Buffer
	in := New(Options{Out: &buf, Clock: clock})
	prog, _ := parser.Parse("var t0 = Date.now(); console.log(t0);")
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	clock.Advance(250)
	prog2, _ := parser.Parse("console.log(Date.now());")
	if err := in.RunProgram(prog2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "0\n250\n" {
		t.Errorf("Date.now with virtual clock: %q", buf.String())
	}
}

func TestObjectKeys(t *testing.T) {
	expect(t, `
var o = { b: 1, a: 2 };
console.log(Object.keys(o).join(","));`, "b,a")
}

func TestSequenceAndComma(t *testing.T) {
	expect(t, "var x = (1, 2, 3); console.log(x);", "3")
}

func TestVoidAndUnaryPlus(t *testing.T) {
	expect(t, `console.log(void 0, +"3", -"2", +true);`, "undefined 3 -2 1")
}

func TestStepsCounter(t *testing.T) {
	prog, _ := parser.Parse("var s = 0; for (var i = 0; i < 100; i++) { s += i; }")
	in := New(Options{})
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if in.Steps < 100 {
		t.Errorf("Steps = %d, want >= 100", in.Steps)
	}
}

func TestEvalWithoutHookThrows(t *testing.T) {
	_, err := tryRun(`eval("1 + 1");`)
	if err == nil {
		t.Fatal("eval without a hook should throw")
	}
}

func TestEvalWithHook(t *testing.T) {
	prog, _ := parser.Parse(`eval("globalFromEval = 7;"); console.log(globalFromEval);`)
	var buf bytes.Buffer
	in := New(Options{Out: &buf})
	in.EvalHook = func(src string) ([]ast.Stmt, error) {
		p, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		return p.Body, nil
	}
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "7\n" {
		t.Errorf("eval output: %q", buf.String())
	}
}
