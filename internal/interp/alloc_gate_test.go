package interp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/parser"
	"repro/internal/resolve"
)

// Allocation gates (ISSUE 4): the tagged Value representation exists so the
// hot paths of the instrumented interpreter loop stop heap-boxing numbers
// and strings. These tests turn that property into a tier-1 failure: if a
// future change reintroduces boxing on the arithmetic loop, the warm
// property get/set path, or number→string coercion, `go test` fails —
// the regression does not wait for the perf gate.
//
// Two kinds of gate:
//   - pure-op gates assert exactly 0 allocs/op on the representation's own
//     operations (the "tagged-arith fast path" bound from the issue);
//   - loop gates run a JS loop with thousands of iterations and assert the
//     whole call stays under a small constant allocation budget, proving
//     the per-iteration cost is zero without depending on the fixed
//     per-call frame/stack setup.

// allocInterp builds a realm, loads src, and returns the named function,
// warming every inline cache and the chunk cache with one call.
func allocInterp(t testing.TB, src, name string, bytecode bool, warm []Value) (*Interp, Value) {
	t.Helper()
	in := New(Options{Bytecode: bytecode})
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	fn, ok := in.Global.Lookup(name)
	if !ok {
		t.Fatalf("function %s not defined", name)
	}
	if _, err := in.Call(fn, Undefined, warm, Undefined); err != nil {
		t.Fatal(err)
	}
	return in, fn
}

// gate runs fn with args under testing.AllocsPerRun and fails when the
// per-call allocation count exceeds budget.
func gate(t *testing.T, in *Interp, fn Value, args []Value, budget float64, what string) {
	t.Helper()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := in.Call(fn, Undefined, args, Undefined); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("%s: %.1f allocs/call, budget %.0f — the tagged representation is boxing again",
			what, allocs, budget)
	}
}

const allocLoopN = 4096

// TestAllocGateBigFrames: a loop over a >16-slot function must not
// heap-allocate per call — the size-bucketed big-frame freelists recycle
// the frame exactly as the inline classes do for small functions.
func TestAllocGateBigFrames(t *testing.T) {
	// bigFnSrc (framepool_test.go) is the shared >16-slot function, so the
	// gate measures exactly the layout the pool tests pin.
	src := bigFnSrc + `
function loop(n) {
  var t = 0;
  for (var i = 0; i < n; i++) { t += big(i, i); }
  return t;
}
`
	for _, bc := range []bool{false, true} {
		in, fn := allocInterp(t, src, "loop", bc, []Value{NumberValue(float64(allocLoopN))})
		gate(t, in, fn, []Value{NumberValue(float64(allocLoopN))}, 8,
			"4096 calls of a 20-local function (bytecode="+fmt.Sprint(bc)+")")
	}
}

// TestAllocGateTaggedArith: the pure representation ops allocate nothing.
// This is the issue's "0 allocs/op on the tagged-arith fast path" bound,
// asserted at exactly zero.
func TestAllocGateTaggedArith(t *testing.T) {
	in := newTestInterp()
	a, b := NumberValue(3.25), NumberValue(11)
	var sink Value
	if n := testing.AllocsPerRun(1000, func() {
		v, err := in.applyBinary("+", a, b)
		if err != nil {
			t.Fatal(err)
		}
		v, err = in.applyBinary("*", v, b)
		if err != nil {
			t.Fatal(err)
		}
		sink = v
	}); n != 0 {
		t.Errorf("number arithmetic through applyBinary: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sink = NumberValue(math.Pi)
		sink = BoolValue(StrictEquals(sink, a))
		sink = StringValue("tagged")
		sink = typeOfValue(sink)
	}); n != 0 {
		t.Errorf("value construction/compare: %v allocs/op, want 0", n)
	}
	_ = sink
}

// TestAllocGateArithLoop: a JS arithmetic loop allocates a constant amount
// per call (frame + operand-stack bookkeeping), independent of iteration
// count — i.e. zero per iteration — on both engines.
func TestAllocGateArithLoop(t *testing.T) {
	const src = `
function arith(n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = s + i * 2 - (i & 3);
    s = s % 1000000007;
  }
  return s;
}`
	args := []Value{NumberValue(allocLoopN)}
	for _, eng := range []struct {
		name     string
		bytecode bool
	}{{"tree", false}, {"bytecode", true}} {
		t.Run(eng.name, func(t *testing.T) {
			in, fn := allocInterp(t, src, "arith", eng.bytecode, args)
			gate(t, in, fn, args, 8, "arith loop ("+eng.name+")")
		})
	}
}

// TestAllocGatePropertyLoop: warm string-key property get and set through
// the inline caches allocate nothing per iteration.
func TestAllocGatePropertyLoop(t *testing.T) {
	const src = `
var obj = { k: 1, other: 2 };
function props(n) {
  var t = 0;
  for (var i = 0; i < n; i++) {
    t = t + obj.k;
    obj.k = t % 97;
  }
  return t;
}`
	args := []Value{NumberValue(allocLoopN)}
	for _, eng := range []struct {
		name     string
		bytecode bool
	}{{"tree", false}, {"bytecode", true}} {
		t.Run(eng.name, func(t *testing.T) {
			in, fn := allocInterp(t, src, "props", eng.bytecode, args)
			gate(t, in, fn, args, 8, "string-key property get/set ("+eng.name+")")
		})
	}
}

// TestAllocGateNumberToString: coercing small integers to strings rides
// the interned decimal table and the empty-string concat fast path —
// zero allocations per iteration.
func TestAllocGateNumberToString(t *testing.T) {
	const src = `
function coerce(n) {
  var len = 0;
  var s;
  for (var i = 0; i < n; i++) {
    s = "" + (i & 255);
    len = len + s.length;
  }
  return len;
}`
	args := []Value{NumberValue(allocLoopN)}
	for _, eng := range []struct {
		name     string
		bytecode bool
	}{{"tree", false}, {"bytecode", true}} {
		t.Run(eng.name, func(t *testing.T) {
			in, fn := allocInterp(t, src, "coerce", eng.bytecode, args)
			gate(t, in, fn, args, 8, "number→string coercion ("+eng.name+")")
		})
	}
}

// TestAllocGateStringCompareLoop: string-valued locals flowing through
// comparisons and typeof never re-box.
func TestAllocGateStringCompareLoop(t *testing.T) {
	const src = `
var mode = "normal";
function guards(n) {
  var hits = 0;
  for (var i = 0; i < n; i++) {
    if (mode === "normal") { hits++; }
    if (typeof mode === "string") { hits++; }
  }
  return hits;
}`
	args := []Value{NumberValue(allocLoopN)}
	for _, eng := range []struct {
		name     string
		bytecode bool
	}{{"tree", false}, {"bytecode", true}} {
		t.Run(eng.name, func(t *testing.T) {
			in, fn := allocInterp(t, src, "guards", eng.bytecode, args)
			gate(t, in, fn, args, 8, "mode-guard string compare ("+eng.name+")")
		})
	}
}

// TestAllocGateElementLoop: integer-indexed array reads and writes stay on
// the element fast path with zero per-iteration allocations (the array is
// pre-grown; growth itself may allocate).
func TestAllocGateElementLoop(t *testing.T) {
	const src = `
var arr = new Array(512);
for (var i = 0; i < 512; i++) { arr[i] = i; }
function elems(n) {
  var t = 0;
  for (var i = 0; i < n; i++) {
    var j = i & 511;
    t = t + arr[j];
    arr[j] = t & 1023;
  }
  return t;
}`
	args := []Value{NumberValue(allocLoopN)}
	for _, eng := range []struct {
		name     string
		bytecode bool
	}{{"tree", false}, {"bytecode", true}} {
		t.Run(eng.name, func(t *testing.T) {
			in, fn := allocInterp(t, src, "elems", eng.bytecode, args)
			gate(t, in, fn, args, 8, "array element loop ("+eng.name+")")
		})
	}
}
