package interp

import "unicode/utf8"

// WTF-8 character access for guest strings.
//
// Guest strings are Go strings: UTF-8 bytes, with `length` and indices
// counted in bytes. Single-character reads decode the character that
// *starts* at the given byte offset instead of slicing one raw byte, so
// non-ASCII text survives charAt/index/split round-trips. The decoder is
// WTF-8, not strict UTF-8: lone surrogates (U+D800–U+DFFF) produced by
// String.fromCharCode are encoded in their natural 3-byte form and decode
// back to themselves, which is what keeps
// fromCharCode(c).charCodeAt(0) === c for every BMP code unit.
//
// Offsets that do not start a valid sequence — a continuation byte, a
// truncated or overlong sequence, a stray 0xFE/0xFF — degrade to the
// historical one-byte view: the byte reads as its own value and the
// substring view is that single byte. Arbitrary byte strings therefore
// still round-trip through split("")/join(""), and the ASCII fast path
// (one compare, zero-copy slice) is unchanged.

// decodeWTF8 decodes the character starting at s[i] (0 <= i < len(s)),
// returning its code point and encoded size in bytes. Size 1 with the raw
// byte value is the fallback for anything that is not a well-formed WTF-8
// sequence start.
func decodeWTF8(s string, i int) (rune, int) {
	b0 := s[i]
	if b0 < utf8.RuneSelf {
		return rune(b0), 1
	}
	n := len(s) - i
	switch {
	case b0&0xE0 == 0xC0: // 2-byte
		if n >= 2 && isCont(s[i+1]) {
			r := rune(b0&0x1F)<<6 | rune(s[i+1]&0x3F)
			if r >= 0x80 {
				return r, 2
			}
		}
	case b0&0xF0 == 0xE0: // 3-byte (surrogates allowed: WTF-8)
		if n >= 3 && isCont(s[i+1]) && isCont(s[i+2]) {
			r := rune(b0&0x0F)<<12 | rune(s[i+1]&0x3F)<<6 | rune(s[i+2]&0x3F)
			if r >= 0x800 {
				return r, 3
			}
		}
	case b0&0xF8 == 0xF0: // 4-byte
		if n >= 4 && isCont(s[i+1]) && isCont(s[i+2]) && isCont(s[i+3]) {
			r := rune(b0&0x07)<<18 | rune(s[i+1]&0x3F)<<12 |
				rune(s[i+2]&0x3F)<<6 | rune(s[i+3]&0x3F)
			if r >= 0x10000 && r <= 0x10FFFF {
				return r, 4
			}
		}
	}
	return rune(b0), 1
}

func isCont(b byte) bool { return b&0xC0 == 0x80 }

// charView returns the single-character substring starting at byte i — a
// zero-copy view into s covering the whole WTF-8 sequence (or one byte on
// the fallback path).
func charView(s string, i int) string {
	if s[i] < utf8.RuneSelf {
		return s[i : i+1]
	}
	_, size := decodeWTF8(s, i)
	return s[i : i+size]
}

// appendWTF8 appends the WTF-8 encoding of a BMP code unit (0–0xFFFF):
// standard UTF-8, except surrogates keep their natural 3-byte encoding
// instead of utf8's U+FFFD replacement.
func appendWTF8(dst []byte, c uint16) []byte {
	switch {
	case c < 0x80:
		return append(dst, byte(c))
	case c < 0x800:
		return append(dst, 0xC0|byte(c>>6), 0x80|byte(c&0x3F))
	default:
		return append(dst, 0xE0|byte(c>>12), 0x80|byte(c>>6&0x3F), 0x80|byte(c&0x3F))
	}
}
