package interp

import (
	"sort"

	"repro/internal/ast"
)

// Snapshot support: the accessors and constructors the snapshot codec
// (internal/snapshot) needs to walk a paused realm's reachable graph and to
// rebuild an equivalent graph in a fresh realm. Everything here preserves
// the package's internal invariants — escape-tracked frame pooling, shape
// canonicalization through the public property mutators, the cumulative
// step/mem accounting — so the codec never reaches into representation it
// could corrupt.

// OwnProp is one own property in insertion order, as reported by OwnProps.
type OwnProp struct {
	Key  string
	Prop Prop
}

// OwnProps returns every own property — enumerable or not, data or
// accessor — in shape insertion order. Replaying SetOwn / SetHidden /
// SetAccessor in this order on a fresh object re-interns the same canonical
// shape in the destination realm's transition tree.
func (o *Object) OwnProps() []OwnProp {
	if o.shape == nil {
		return nil
	}
	out := make([]OwnProp, len(o.shape.keys))
	for i, k := range o.shape.keys {
		out[i] = OwnProp{Key: k, Prop: o.slots[i]}
	}
	return out
}

// Parent returns the enclosing frame (nil for the global frame).
func (e *Env) Parent() *Env { return e.parent }

// Layout returns the static slot layout (nil for dynamic map frames).
func (e *Env) Layout() *ast.ScopeInfo { return e.layout }

// SlotValues returns the live slot prefix of a slot frame (aliased, not
// copied; the snapshot walk only reads it).
func (e *Env) SlotValues() []Value { return e.slots }

// DynamicVars returns the dynamic bindings map (nil when none). Callers
// that need determinism must sort the keys.
func (e *Env) DynamicVars() map[string]Value { return e.vars }

// IsGlobalFrame reports whether this is the realm's cell-backed root frame.
func (e *Env) IsGlobalFrame() bool { return e.cells != nil }

// GlobalNames returns the global frame's binding names, sorted, so the
// encoder emits bindings in a deterministic order.
func (e *Env) GlobalNames() []string {
	names := make([]string, 0, len(e.cells))
	for name := range e.cells {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RestoredSlotEnv builds a slot frame for a decoded snapshot. The frame is
// born escaped: it was reachable from a closure or continuation in the
// source realm (that is why it was encoded), so it must never enter the
// frame pool. It is charged to the meter like any frame, but the decoder
// overwrites the counter with the snapshot's figure afterwards
// (SetAccounting), so decode cost never bills the guest twice.
func (in *Interp) RestoredSlotEnv(parent *Env, layout *ast.ScopeInfo, slots []Value) *Env {
	e := &Env{parent: parent, layout: layout, slots: slots, escaped: true}
	in.chargeMem(frameMemCost(e))
	return e
}

// RestoredDynamicEnv builds a dynamic map frame for a decoded snapshot,
// escaped for the same reason as RestoredSlotEnv.
func (in *Interp) RestoredDynamicEnv(parent *Env, vars map[string]Value) *Env {
	if vars == nil {
		vars = make(map[string]Value)
	}
	return &Env{parent: parent, vars: vars, escaped: true}
}

// AttachDynamicVars installs decoded dynamic bindings on a slot frame (a
// frame that grew a vars map through eval/for-in in the source realm).
func (e *Env) AttachDynamicVars(vars map[string]Value) {
	if len(vars) > 0 {
		e.vars = vars
	}
}

// SetRestoredParent wires a decoded frame into its chain. Decoding
// allocates all frames before linking them (parent references in a
// snapshot may point forward), so the parent arrives in a second pass.
// Restored-frame use only.
func (e *Env) SetRestoredParent(p *Env) { e.parent = p }

// NewClosure builds a function object exactly as evaluating the function
// literal in env would — same co-allocation, same escape marking of the
// captured chain, same meter charge. The snapshot decoder pairs a
// deterministic function ID (resolved back to fn) with a decoded env.
func (in *Interp) NewClosure(fn *ast.Func, env *Env) *Object {
	return in.makeFunction(fn, env)
}

// RandState reads the Math.random generator state so a restored guest
// continues the same pseudo-random sequence.
func (in *Interp) RandState() uint64 { return in.rng }

// SetRandState replaces the Math.random generator state.
func (in *Interp) SetRandState(s uint64) { in.rng = s }

// SetAccounting overwrites the cumulative step and allocation counters with
// a snapshot's figures, then re-derives the folded statement-boundary
// limit. Restores call it after decoding, so the restored guest resumes
// under the same cumulative budgets it was parked with and the decode
// traffic itself is not billed.
func (in *Interp) SetAccounting(steps, memUsed uint64) {
	in.Steps = steps
	in.memUsed = memUsed
	// The jump in Steps covers statements run in the parked realm's past
	// life; re-anchor the profiler so they are not attributed to the first
	// stack sampled here.
	if profSeam {
		in.profResetBaseline()
	}
	in.recomputeStepLimit()
}
