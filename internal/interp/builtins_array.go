package interp

import (
	"sort"
	"strings"
)

// setupArray installs the Array constructor and Array.prototype. Methods
// that accept callbacks (sort, forEach, map, filter, reduce) call back into
// JavaScript through a native frame; programs compiled with Stopify must not
// capture continuations inside such callbacks (compiler-generated code in
// practice defines its own higher-order helpers in JS, which is what the
// benchmark programs do — see DESIGN.md §4.1).
func (in *Interp) setupArray() {
	arrayCtor := in.native("Array", func(in *Interp, this Value, args []Value) (Value, error) {
		in.charge(in.Engine.ObjectCreateCost)
		if isCtorSentinel(this) && len(args) == 1 && args[0].IsNumber() {
			n := args[0].Num()
			size := int(n)
			if size < 0 || float64(size) != n {
				return Undefined, in.Throw("RangeError", "invalid array length")
			}
			// Pre-check: `new Array(1e9)` is a one-call multi-gigabyte
			// allocation; refuse before make, not after. NewArray itself
			// charges the accepted storage.
			if err := in.checkMem(memObjectBytes + size*memValueBytes); err != nil {
				return Undefined, err
			}
			return ObjectValue(in.NewArray(make([]Value, size))), nil
		}
		return ObjectValue(in.NewArray(append([]Value(nil), args...))), nil
	})
	arrayCtor.SetHidden("prototype", ObjectValue(in.arrayProto))
	arrayCtor.SetHidden("isArray", in.nativeV("isArray", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		o := args[0].Obj()
		return BoolValue(o != nil && o.Class == "Array"), nil
	}))
	in.Global.Define("Array", ObjectValue(arrayCtor))

	ap := in.arrayProto
	method := func(name string, fn NativeFunc) { ap.SetHidden(name, in.nativeV(name, fn)) }

	selfArray := func(in *Interp, this Value) (*Object, error) {
		o := this.Obj()
		if o == nil || (o.Class != "Array" && o.Class != "Arguments") {
			return nil, in.Throw("TypeError", "receiver is not an array")
		}
		return o, nil
	}

	method("push", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		in.chargeMem(memValueBytes * len(args))
		a.Elems = append(a.Elems, args...)
		return NumberValue(float64(len(a.Elems))), nil
	})
	method("pop", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(a.Elems) == 0 {
			return Undefined, nil
		}
		v := a.Elems[len(a.Elems)-1]
		a.Elems = a.Elems[:len(a.Elems)-1]
		return v, nil
	})
	method("shift", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(a.Elems) == 0 {
			return Undefined, nil
		}
		v := a.Elems[0]
		a.Elems = append([]Value(nil), a.Elems[1:]...)
		return v, nil
	})
	method("unshift", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		in.chargeMem(memValueBytes * len(args))
		a.Elems = append(append([]Value(nil), args...), a.Elems...)
		return NumberValue(float64(len(a.Elems))), nil
	})
	method("slice", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		start, end, err := in.sliceBounds(args, len(a.Elems))
		if err != nil {
			return Undefined, err
		}
		return ObjectValue(in.NewArray(append([]Value(nil), a.Elems[start:end]...))), nil
	})
	method("splice", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		n := len(a.Elems)
		start := 0
		if len(args) > 0 {
			s, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			start = clampIndex(int(s), n)
		}
		count := n - start
		if len(args) > 1 {
			c, err := in.ToNumber(args[1])
			if err != nil {
				return Undefined, err
			}
			count = int(c)
			if count < 0 {
				count = 0
			}
			if count > n-start {
				count = n - start
			}
		}
		removed := append([]Value(nil), a.Elems[start:start+count]...)
		var inserted []Value
		if len(args) > 2 {
			inserted = args[2:]
		}
		if grow := len(inserted) - count; grow > 0 {
			in.chargeMem(memValueBytes * grow)
		}
		rest := append([]Value(nil), a.Elems[start+count:]...)
		a.Elems = append(append(a.Elems[:start], inserted...), rest...)
		return ObjectValue(in.NewArray(removed)), nil
	})
	method("concat", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		out := append([]Value(nil), a.Elems...)
		for _, arg := range args {
			if o := arg.Obj(); o != nil && o.Class == "Array" {
				out = append(out, o.Elems...)
			} else {
				out = append(out, arg)
			}
		}
		return ObjectValue(in.NewArray(out)), nil
	})
	method("join", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		sep := ","
		if len(args) > 0 && !args[0].IsUndefined() {
			s, err := in.ToStringValue(args[0])
			if err != nil {
				return Undefined, err
			}
			sep = s
		}
		parts := make([]string, len(a.Elems))
		total := 0
		for i, el := range a.Elems {
			s := ""
			if !el.IsNullish() {
				v, err := in.ToStringValue(el)
				if err != nil {
					return Undefined, err
				}
				s = v
			}
			parts[i] = s
			// Separator bytes count even for nullish elements — an array of
			// holes joined on a long separator grows just as fast.
			total += len(s) + len(sep)
			if total > MaxStringLen {
				return Undefined, in.Throw("RangeError", "Invalid string length")
			}
		}
		if err := in.checkMem(total); err != nil {
			return Undefined, err
		}
		in.chargeMem(total)
		return StringValue(strings.Join(parts, sep)), nil
	})
	method("indexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return NumberValue(-1), nil
		}
		for i, el := range a.Elems {
			if StrictEquals(el, args[0]) {
				return NumberValue(float64(i)), nil
			}
		}
		return NumberValue(-1), nil
	})
	method("lastIndexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return NumberValue(-1), nil
		}
		for i := len(a.Elems) - 1; i >= 0; i-- {
			if StrictEquals(a.Elems[i], args[0]) {
				return NumberValue(float64(i)), nil
			}
		}
		return NumberValue(-1), nil
	})
	method("reverse", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
			a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
		}
		return this, nil
	})
	method("sort", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		var cmp Value
		if len(args) > 0 && args[0].Obj().IsCallable() {
			cmp = args[0]
		}
		var sortErr error
		in.EnterAtomic()
		defer in.ExitAtomic()
		sort.SliceStable(a.Elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			if cmp.IsObject() {
				r, err := in.Call(cmp, Undefined, []Value{a.Elems[i], a.Elems[j]}, Undefined)
				if err != nil {
					sortErr = err
					return false
				}
				f, err := in.ToNumber(r)
				if err != nil {
					sortErr = err
					return false
				}
				return f < 0
			}
			si, err := in.ToStringValue(a.Elems[i])
			if err != nil {
				sortErr = err
				return false
			}
			sj, err := in.ToStringValue(a.Elems[j])
			if err != nil {
				sortErr = err
				return false
			}
			return si < sj
		})
		if sortErr != nil {
			return Undefined, sortErr
		}
		return this, nil
	})
	method("forEach", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return Undefined, in.Throw("TypeError", "forEach requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		for i, el := range a.Elems {
			if _, err := in.Call(args[0], Undefined, []Value{el, NumberValue(float64(i)), this}, Undefined); err != nil {
				return Undefined, err
			}
		}
		return Undefined, nil
	})
	method("map", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return Undefined, in.Throw("TypeError", "map requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		out := make([]Value, len(a.Elems))
		for i, el := range a.Elems {
			v, err := in.Call(args[0], Undefined, []Value{el, NumberValue(float64(i)), this}, Undefined)
			if err != nil {
				return Undefined, err
			}
			out[i] = v
		}
		return ObjectValue(in.NewArray(out)), nil
	})
	method("filter", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return Undefined, in.Throw("TypeError", "filter requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		var out []Value
		for i, el := range a.Elems {
			v, err := in.Call(args[0], Undefined, []Value{el, NumberValue(float64(i)), this}, Undefined)
			if err != nil {
				return Undefined, err
			}
			if ToBoolean(v) {
				out = append(out, el)
			}
		}
		return ObjectValue(in.NewArray(out)), nil
	})
	method("reduce", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return Undefined, in.Throw("TypeError", "reduce requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		i := 0
		var acc Value
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.Elems) == 0 {
				return Undefined, in.Throw("TypeError", "reduce of empty array with no initial value")
			}
			acc = a.Elems[0]
			i = 1
		}
		for ; i < len(a.Elems); i++ {
			v, err := in.Call(args[0], Undefined, []Value{acc, a.Elems[i], NumberValue(float64(i)), this}, Undefined)
			if err != nil {
				return Undefined, err
			}
			acc = v
		}
		return acc, nil
	})
	method("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return Undefined, err
		}
		parts := make([]string, len(a.Elems))
		total := 0
		for i, el := range a.Elems {
			s := ""
			if !el.IsNullish() {
				v, err := in.ToStringValue(el)
				if err != nil {
					return Undefined, err
				}
				s = v
			}
			parts[i] = s
			total += len(s) + 1
			if total > MaxStringLen {
				return Undefined, in.Throw("RangeError", "Invalid string length")
			}
		}
		if err := in.checkMem(total); err != nil {
			return Undefined, err
		}
		in.chargeMem(total)
		return StringValue(strings.Join(parts, ",")), nil
	})
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func (in *Interp) sliceBounds(args []Value, n int) (int, int, error) {
	start, end := 0, n
	if len(args) > 0 && !args[0].IsUndefined() {
		s, err := in.ToNumber(args[0])
		if err != nil {
			return 0, 0, err
		}
		start = clampIndex(int(s), n)
	}
	if len(args) > 1 && !args[1].IsUndefined() {
		e, err := in.ToNumber(args[1])
		if err != nil {
			return 0, 0, err
		}
		end = clampIndex(int(e), n)
	}
	if end < start {
		end = start
	}
	return start, end, nil
}
