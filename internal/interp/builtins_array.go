package interp

import (
	"sort"
	"strings"
)

// setupArray installs the Array constructor and Array.prototype. Methods
// that accept callbacks (sort, forEach, map, filter, reduce) call back into
// JavaScript through a native frame; programs compiled with Stopify must not
// capture continuations inside such callbacks (compiler-generated code in
// practice defines its own higher-order helpers in JS, which is what the
// benchmark programs do — see DESIGN.md §4.1).
func (in *Interp) setupArray() {
	arrayCtor := in.native("Array", func(in *Interp, this Value, args []Value) (Value, error) {
		in.charge(in.Engine.ObjectCreateCost)
		if _, isNew := this.(constructSentinel); isNew && len(args) == 1 {
			if n, ok := args[0].(float64); ok {
				size := int(n)
				if size < 0 || float64(size) != n {
					return nil, in.Throw("RangeError", "invalid array length")
				}
				elems := make([]Value, size)
				for i := range elems {
					elems[i] = Undefined{}
				}
				return in.NewArray(elems), nil
			}
		}
		return in.NewArray(append([]Value(nil), args...)), nil
	})
	arrayCtor.SetHidden("prototype", in.arrayProto)
	arrayCtor.SetHidden("isArray", in.native("isArray", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		o, ok := args[0].(*Object)
		return ok && o.Class == "Array", nil
	}))
	in.Global.Define("Array", arrayCtor)

	ap := in.arrayProto
	method := func(name string, fn NativeFunc) { ap.SetHidden(name, in.native(name, fn)) }

	selfArray := func(in *Interp, this Value) (*Object, error) {
		o, ok := this.(*Object)
		if !ok || (o.Class != "Array" && o.Class != "Arguments") {
			return nil, in.Throw("TypeError", "receiver is not an array")
		}
		return o, nil
	}

	method("push", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		a.Elems = append(a.Elems, args...)
		return float64(len(a.Elems)), nil
	})
	method("pop", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(a.Elems) == 0 {
			return Undefined{}, nil
		}
		v := a.Elems[len(a.Elems)-1]
		a.Elems = a.Elems[:len(a.Elems)-1]
		return v, nil
	})
	method("shift", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(a.Elems) == 0 {
			return Undefined{}, nil
		}
		v := a.Elems[0]
		a.Elems = append([]Value(nil), a.Elems[1:]...)
		return v, nil
	})
	method("unshift", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		a.Elems = append(append([]Value(nil), args...), a.Elems...)
		return float64(len(a.Elems)), nil
	})
	method("slice", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		start, end, err := in.sliceBounds(args, len(a.Elems))
		if err != nil {
			return nil, err
		}
		return in.NewArray(append([]Value(nil), a.Elems[start:end]...)), nil
	})
	method("splice", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		n := len(a.Elems)
		start := 0
		if len(args) > 0 {
			s, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			start = clampIndex(int(s), n)
		}
		count := n - start
		if len(args) > 1 {
			c, err := in.ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			count = int(c)
			if count < 0 {
				count = 0
			}
			if count > n-start {
				count = n - start
			}
		}
		removed := append([]Value(nil), a.Elems[start:start+count]...)
		var inserted []Value
		if len(args) > 2 {
			inserted = args[2:]
		}
		rest := append([]Value(nil), a.Elems[start+count:]...)
		a.Elems = append(append(a.Elems[:start], inserted...), rest...)
		return in.NewArray(removed), nil
	})
	method("concat", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		out := append([]Value(nil), a.Elems...)
		for _, arg := range args {
			if o, ok := arg.(*Object); ok && o.Class == "Array" {
				out = append(out, o.Elems...)
			} else {
				out = append(out, arg)
			}
		}
		return in.NewArray(out), nil
	})
	method("join", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		sep := ","
		if len(args) > 0 {
			if _, isU := args[0].(Undefined); !isU {
				s, err := in.ToStringValue(args[0])
				if err != nil {
					return nil, err
				}
				sep = s
			}
		}
		parts := make([]string, len(a.Elems))
		for i, el := range a.Elems {
			switch el.(type) {
			case Undefined, Null:
				parts[i] = ""
			default:
				s, err := in.ToStringValue(el)
				if err != nil {
					return nil, err
				}
				parts[i] = s
			}
		}
		return strings.Join(parts, sep), nil
	})
	method("indexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return -1.0, nil
		}
		for i, el := range a.Elems {
			if StrictEquals(el, args[0]) {
				return float64(i), nil
			}
		}
		return -1.0, nil
	})
	method("lastIndexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return -1.0, nil
		}
		for i := len(a.Elems) - 1; i >= 0; i-- {
			if StrictEquals(a.Elems[i], args[0]) {
				return float64(i), nil
			}
		}
		return -1.0, nil
	})
	method("reverse", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
			a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
		}
		return a, nil
	})
	method("sort", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		var cmp *Object
		if len(args) > 0 {
			if f, ok := args[0].(*Object); ok && f.IsCallable() {
				cmp = f
			}
		}
		var sortErr error
		in.EnterAtomic()
		defer in.ExitAtomic()
		sort.SliceStable(a.Elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			if cmp != nil {
				r, err := in.Call(cmp, Undefined{}, []Value{a.Elems[i], a.Elems[j]}, Undefined{})
				if err != nil {
					sortErr = err
					return false
				}
				f, err := in.ToNumber(r)
				if err != nil {
					sortErr = err
					return false
				}
				return f < 0
			}
			si, err := in.ToStringValue(a.Elems[i])
			if err != nil {
				sortErr = err
				return false
			}
			sj, err := in.ToStringValue(a.Elems[j])
			if err != nil {
				sortErr = err
				return false
			}
			return si < sj
		})
		if sortErr != nil {
			return nil, sortErr
		}
		return a, nil
	})
	method("forEach", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, in.Throw("TypeError", "forEach requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		for i, el := range a.Elems {
			if _, err := in.Call(args[0], Undefined{}, []Value{el, float64(i), a}, Undefined{}); err != nil {
				return nil, err
			}
		}
		return Undefined{}, nil
	})
	method("map", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, in.Throw("TypeError", "map requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		out := make([]Value, len(a.Elems))
		for i, el := range a.Elems {
			v, err := in.Call(args[0], Undefined{}, []Value{el, float64(i), a}, Undefined{})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return in.NewArray(out), nil
	})
	method("filter", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, in.Throw("TypeError", "filter requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		var out []Value
		for i, el := range a.Elems {
			v, err := in.Call(args[0], Undefined{}, []Value{el, float64(i), a}, Undefined{})
			if err != nil {
				return nil, err
			}
			if ToBoolean(v) {
				out = append(out, el)
			}
		}
		return in.NewArray(out), nil
	})
	method("reduce", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, in.Throw("TypeError", "reduce requires a callback")
		}
		in.EnterAtomic()
		defer in.ExitAtomic()
		i := 0
		var acc Value
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.Elems) == 0 {
				return nil, in.Throw("TypeError", "reduce of empty array with no initial value")
			}
			acc = a.Elems[0]
			i = 1
		}
		for ; i < len(a.Elems); i++ {
			v, err := in.Call(args[0], Undefined{}, []Value{acc, a.Elems[i], float64(i), a}, Undefined{})
			if err != nil {
				return nil, err
			}
			acc = v
		}
		return acc, nil
	})
	method("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		a, err := selfArray(in, this)
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(a.Elems))
		for i, el := range a.Elems {
			switch el.(type) {
			case Undefined, Null:
				parts[i] = ""
			default:
				s, err := in.ToStringValue(el)
				if err != nil {
					return nil, err
				}
				parts[i] = s
			}
		}
		return strings.Join(parts, ","), nil
	})
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func (in *Interp) sliceBounds(args []Value, n int) (int, int, error) {
	start, end := 0, n
	if len(args) > 0 {
		if _, isU := args[0].(Undefined); !isU {
			s, err := in.ToNumber(args[0])
			if err != nil {
				return 0, 0, err
			}
			start = clampIndex(int(s), n)
		}
	}
	if len(args) > 1 {
		if _, isU := args[1].(Undefined); !isU {
			e, err := in.ToNumber(args[1])
			if err != nil {
				return 0, 0, err
			}
			end = clampIndex(int(e), n)
		}
	}
	if end < start {
		end = start
	}
	return start, end, nil
}
