package interp

import "testing"

// Every BMP code unit — surrogates included — must encode and decode back
// to itself: the invariant behind fromCharCode(c).charCodeAt(0) === c.
func TestWTF8RoundTripBMP(t *testing.T) {
	for c := 0; c <= 0xFFFF; c++ {
		b := appendWTF8(nil, uint16(c))
		r, size := decodeWTF8(string(b), 0)
		if r != rune(c) || size != len(b) {
			t.Fatalf("code unit %#04x: encoded %x, decoded (%#x, %d)", c, b, r, size)
		}
		var wantLen int
		switch {
		case c < 0x80:
			wantLen = 1
		case c < 0x800:
			wantLen = 2
		default:
			wantLen = 3
		}
		if len(b) != wantLen {
			t.Fatalf("code unit %#04x: encoded length %d, want %d", c, len(b), wantLen)
		}
	}
}

// Supplementary-plane characters decode as 4-byte sequences (charCodeAt on
// an astral character returns its code point; there is no surrogate-pair
// splitting in the byte-indexed model).
func TestWTF8DecodeAstral(t *testing.T) {
	s := "🙂" // U+1F642
	r, size := decodeWTF8(s, 0)
	if r != 0x1F642 || size != 4 {
		t.Fatalf("decoded (%#x, %d), want (0x1F642, 4)", r, size)
	}
	if got := charView(s, 0); got != s {
		t.Fatalf("charView = %q, want %q", got, s)
	}
}

// Offsets that do not start a well-formed sequence degrade to the one-byte
// view, so arbitrary byte strings stay self-consistent.
func TestWTF8Fallbacks(t *testing.T) {
	cases := []struct {
		name string
		s    string
		want rune
	}{
		{"continuation byte", "\x80", 0x80},
		{"truncated 3-byte", "\xE2\x82", 0xE2},
		{"overlong 2-byte", "\xC0\x80", 0xC0},
		{"overlong 3-byte", "\xE0\x80\x80", 0xE0},
		{"beyond U+10FFFF", "\xF7\xBF\xBF\xBF", 0xF7},
		{"stray FF", "\xFF", 0xFF},
	}
	for _, c := range cases {
		r, size := decodeWTF8(c.s, 0)
		if r != c.want || size != 1 {
			t.Errorf("%s: decoded (%#x, %d), want (%#x, 1)", c.name, r, size, c.want)
		}
		if got := charView(c.s, 0); got != c.s[:1] {
			t.Errorf("%s: charView = %q, want one byte", c.name, got)
		}
	}
	// Mid-sequence offset inside a valid character: the continuation byte.
	if r, size := decodeWTF8("€", 1); r != 0x82 || size != 1 {
		t.Errorf("mid-char offset: decoded (%#x, %d), want (0x82, 1)", r, size)
	}
}
