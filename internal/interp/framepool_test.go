package interp

import (
	"bytes"
	"testing"

	"repro/internal/parser"
	"repro/internal/resolve"
)

// Frame-pool tests: calls recycle their slot frames through the per-realm
// pool unless a closure escaped with the frame (makeFunction marks the
// chain). Correctness here is subtle enough to deserve direct coverage on
// top of the differential corpus: a frame recycled too eagerly corrupts
// captured variables silently.

func runPoolSrc(t *testing.T, src string, bytecode bool) string {
	t.Helper()
	var buf bytes.Buffer
	in := New(Options{Out: &buf, Bytecode: bytecode})
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFramePoolEscapedClosures: closures created in different calls must
// keep their own frames even though non-capturing calls recycle theirs in
// between.
func TestFramePoolEscapedClosures(t *testing.T) {
	const src = `
function leaf(x) { return x * 2; } // never captured: pooled every call
function mk(i) {
  var local = i * 10;
  leaf(i); // interleave pooled calls with the capturing one
  return function () { return local + i; };
}
var a = mk(1);
var b = mk(2);
for (var j = 0; j < 100; j++) { leaf(j); } // churn the pool
console.log(a(), b(), a() === a());
`
	for _, bc := range []bool{false, true} {
		if got := runPoolSrc(t, src, bc); got != "11 22 true\n" {
			t.Errorf("bytecode=%v: closures observed recycled frames: %q", bc, got)
		}
	}
}

// TestFramePoolConditionalEscape: the same function pools its frame on
// calls that do not evaluate the nested function literal and keeps it on
// calls that do — the dynamic-escape property the lazy thunks rely on.
func TestFramePoolConditionalEscape(t *testing.T) {
	const src = `
var saved = [];
function maybe(i, keep) {
  var v = i * 100;
  if (keep) { saved.push(function () { return v; }); }
  return v;
}
for (var i = 0; i < 50; i++) { maybe(i, i % 10 === 0); }
var sum = 0;
for (var k = 0; k < saved.length; k++) { sum += saved[k](); }
console.log(saved.length, sum);
`
	// kept: i = 0,10,20,30,40 → v = 0+1000+2000+3000+4000 = 10000
	for _, bc := range []bool{false, true} {
		if got := runPoolSrc(t, src, bc); got != "5 10000\n" {
			t.Errorf("bytecode=%v: conditional escape broken: %q", bc, got)
		}
	}
}

// TestFramePoolReuses verifies the pool actually recycles: after a burst
// of non-capturing calls, the freelists are populated and a fresh call
// pops from them (the allocation gates assert the same thing indirectly;
// this pins the mechanism).
func TestFramePoolReuses(t *testing.T) {
	in := New(Options{})
	prog, err := parser.Parse(`
function f(a, b) { var c = a + b; return c; }
var t = 0;
for (var i = 0; i < 32; i++) { t += f(i, i); }
`)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	// The frame layout is self + params + this + new.target + arguments +
	// locals, so even a tiny function lands in one of the two size-class
	// pools — just assert a pool was fed at all.
	if len(in.envFree6)+len(in.envFree16) == 0 {
		t.Fatal("non-capturing calls did not return frames to the pool")
	}
	// Recursion exercises LIFO acquire/release nesting.
	var out bytes.Buffer
	in2 := New(Options{Out: &out})
	prog2, err := parser.Parse(`
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
console.log(fib(15));
`)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog2)
	if err := in2.RunProgram(prog2); err != nil {
		t.Fatal(err)
	}
	if out.String() != "610\n" {
		t.Fatalf("recursive pooled calls computed %q, want 610", out.String())
	}
}

// bigFnSrc defines big(a, b): a function whose frame layout exceeds the
// 16-slot inline class (20 named locals plus params and implicits), landing
// it in the first big bucket.
const bigFnSrc = `
function big(a, b) {
  var v1 = a + 1, v2 = a + 2, v3 = a + 3, v4 = a + 4, v5 = a + 5;
  var v6 = b + 1, v7 = b + 2, v8 = b + 3, v9 = b + 4, v10 = b + 5;
  var v11 = v1 + v6, v12 = v2 + v7, v13 = v3 + v8, v14 = v4 + v9, v15 = v5 + v10;
  var v16 = v11 * 2, v17 = v12 * 2, v18 = v13 * 2, v19 = v14 * 2, v20 = v15 * 2;
  return v16 + v17 + v18 + v19 + v20;
}
`

// TestFramePoolBigFrames: >16-slot frames recycle through the size-bucketed
// freelists with the same escape discipline as the inline classes — a
// closure capturing a big frame keeps it, non-capturing calls recycle, and
// recycled frames come back fully cleared (hoisted vars read undefined).
func TestFramePoolBigFrames(t *testing.T) {
	const src = bigFnSrc + `
var saved = [];
function bigCapture(i) {
  var w1 = i, w2 = i, w3 = i, w4 = i, w5 = i, w6 = i, w7 = i, w8 = i;
  var w9 = i, w10 = i, w11 = i, w12 = i, w13 = i, w14 = i, w15 = i;
  var w16 = i, w17 = i, local = i * 1000;
  saved.push(function () { return local + w1; });
  return w17;
}
// A big frame whose later vars are never written: a dirty recycled buffer
// would leak the previous call's values here.
function bigFresh(x) {
  var u1 = x, u2, u3, u4, u5, u6, u7, u8, u9, u10;
  var u11, u12, u13, u14, u15, u16, u17, u18;
  return u18 === undefined && u2 === undefined ? "clean" : "dirty";
}
var t1 = 0;
for (var i = 0; i < 50; i++) { t1 += big(i, i + 1); }
bigCapture(1); bigCapture(2);
for (var j = 0; j < 50; j++) { t1 += big(j, j); }
console.log(bigFresh(9), saved[0](), saved[1](), t1);
`
	for _, bc := range []bool{false, true} {
		got := runPoolSrc(t, src, bc)
		if got != "clean 1001 2002 55500\n" {
			t.Errorf("bytecode=%v: big-frame pooling broken: %q", bc, got)
		}
	}
}

// TestFramePoolBigBucketFeeds pins the mechanism: non-capturing calls of a
// >16-slot function populate a big bucket, and the buffers parked there are
// fully cleared.
func TestFramePoolBigBucketFeeds(t *testing.T) {
	in := New(Options{})
	prog, err := parser.Parse(bigFnSrc + `
var t = 0;
for (var i = 0; i < 32; i++) { t += big(i, i); }
`)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	total := 0
	for idx := range in.envFreeBig {
		for _, e := range in.envFreeBig[idx] {
			total++
			if cap(e.slots) != bigBucketCaps[idx] {
				t.Errorf("bucket %d holds a frame with cap %d", idx, cap(e.slots))
			}
			for i, v := range e.slots[:cap(e.slots)] {
				if v != (Value{}) {
					t.Fatalf("pooled big frame slot %d not cleared", i)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("big-frame calls fed no bucket")
	}
}

// TestFramePoolCatchScopes: catch frames chain onto pooled function
// frames; the caught binding and locals must survive the interleaving.
func TestFramePoolCatchScopes(t *testing.T) {
	const src = `
function thrower(i) { throw new Error("e" + i); }
function catcher(i) {
  var tag = "c" + i;
  try { thrower(i); } catch (e) { return tag + ":" + e.message; }
}
console.log(catcher(1), catcher(2));
`
	for _, bc := range []bool{false, true} {
		if got := runPoolSrc(t, src, bc); got != "c1:e1 c2:e2\n" {
			t.Errorf("bytecode=%v: catch over pooled frames broken: %q", bc, got)
		}
	}
}
