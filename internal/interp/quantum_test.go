package interp

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/resolve"
)

// Quantum-hook unit coverage (ISSUE 5): the cooperative preemption trigger
// shares the statement-boundary check with MaxSteps on both engines. These
// pin the edge the folded stepLimit representation could get wrong — a
// quantum of 1 means "fire at the very next statement", which lands on
// stepLimit 0 and must not read as "disabled" (nor disable MaxSteps).

// newQuantumInterp builds the realm first and installs the hook second, so
// test hooks can safely close over the returned *Interp.
func newQuantumInterp(t *testing.T, bytecode bool, opts Options) *Interp {
	t.Helper()
	opts.Bytecode = bytecode
	return New(opts)
}

func quantumRun(t *testing.T, in *Interp, src string) error {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	return in.RunProgram(prog)
}

const quantumLoop = `
function spin(n) {
  var t = 0;
  for (var i = 0; i < n; i++) { t += i; }
  return t;
}
spin(2000);
`

func TestQuantumFiresEveryStatement(t *testing.T) {
	for _, bc := range []bool{false, true} {
		fires := 0
		in := newQuantumInterp(t, bc, Options{})
		in.SetOnQuantum(func() {
			fires++
			in.ArmQuantum(1) // re-arm: next statement again
		})
		in.ArmQuantum(1)
		if err := quantumRun(t, in, quantumLoop); err != nil {
			t.Fatalf("bytecode=%v: %v", bc, err)
		}
		// Every statement boundary re-fires; the exact count depends on
		// engine statement folding, but it must be on the order of the
		// executed statements, not 0 or 1.
		if uint64(fires) < in.Steps/4 {
			t.Errorf("bytecode=%v: quantum=1 fired %d times over %d steps — the stepLimit 0 edge reads as disabled",
				bc, fires, in.Steps)
		}
	}
}

func TestQuantumOneDoesNotDisableMaxSteps(t *testing.T) {
	for _, bc := range []bool{false, true} {
		// A pathological tenant: quantum 1 whose hook never re-arms must
		// still hit the hard budget.
		in := newQuantumInterp(t, bc, Options{
			QuantumSteps: 1,
			MaxSteps:     500,
			OnQuantum:    func() {},
		})
		if err := quantumRun(t, in, quantumLoop); err != ErrStepBudget {
			t.Errorf("bytecode=%v: err=%v, want ErrStepBudget despite quantum=1", bc, err)
		}
	}
}

func TestQuantumOneShot(t *testing.T) {
	for _, bc := range []bool{false, true} {
		fires := 0
		in := newQuantumInterp(t, bc, Options{
			QuantumSteps: 100,
			OnQuantum:    func() { fires++ },
		})
		if err := quantumRun(t, in, quantumLoop); err != nil {
			t.Fatalf("bytecode=%v: %v", bc, err)
		}
		if fires != 1 {
			t.Errorf("bytecode=%v: non-rearming hook fired %d times, want exactly 1", bc, fires)
		}
	}
}

func TestQuantumRearmSpacing(t *testing.T) {
	for _, bc := range []bool{false, true} {
		var marks []uint64
		in := newQuantumInterp(t, bc, Options{})
		in.SetOnQuantum(func() {
			marks = append(marks, in.Steps)
			in.ArmQuantum(200)
		})
		in.ArmQuantum(200)
		if err := quantumRun(t, in, quantumLoop); err != nil {
			t.Fatal(err)
		}
		if len(marks) < 5 {
			t.Fatalf("bytecode=%v: only %d quanta over %d steps", bc, len(marks), in.Steps)
		}
		for i := 1; i < len(marks); i++ {
			gap := marks[i] - marks[i-1]
			// Superinstruction folding can overshoot a boundary by a few
			// statements; it must never undershoot the armed quantum.
			if gap < 200 || gap > 220 {
				t.Errorf("bytecode=%v: quantum %d fired after %d steps, want ~200", bc, i, gap)
			}
		}
	}
}
