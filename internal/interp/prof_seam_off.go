//go:build stopify_noprof

package interp

// profSeam is compiled out: the sampling profiler (profile.go) becomes dead
// code, StartProfile is a no-op, and the statement-boundary check stays the
// single pre-profiler compare. CI's overhead gate builds with this tag and
// runs the interpreter perf check against the shared baseline.
const profSeam = false
