package interp

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/parser"
	"repro/internal/printer"
	"repro/internal/resolve"
)

// Property tests pinning the tagged Value representation (ISSUE 4): every
// primitive class round-trips without losing the observable distinctions
// JavaScript has (-0's sign, NaN's non-reflexivity, 2^53-boundary
// integers, string content and cheap identity), and the typeof /
// strict-equality lattice over the tags matches what the engine itself
// computes for the same literals — the cross-check that would catch a
// divergence between the Go-level representation and the pre-change
// interface{} semantics.

// TestValueLayout pins the struct size the representation was designed
// around: 24 bytes, fully inline payloads. Growing it is not forbidden,
// but must be a deliberate decision — this test is the tripwire.
func TestValueLayout(t *testing.T) {
	if got := unsafe.Sizeof(Value{}); got != 24 {
		t.Fatalf("Value is %d bytes, want 24 (num 8 + ptr 8 + slen 4 + tag 1 + pad)", got)
	}
	var zero Value
	if !zero.IsUndefined() {
		t.Fatal("the zero Value must be undefined (env slots and cleared arenas rely on it)")
	}
}

// TestNumberRoundTrip drives every interesting float64 class through the
// representation and back.
func TestNumberRoundTrip(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1),
		1 << 53, 1<<53 + 2, 1<<53 - 1, -(1 << 53), -(1<<53 - 1),
		float64(1<<53) + 1, // not representable: rounds to 2^53 — must round-trip as what Go stores
		1e21, 1e-21, math.Pi,
	}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 4096; i++ {
		specials = append(specials, math.Float64frombits(rnd.Uint64()))
	}
	for _, f := range specials {
		v := NumberValue(f)
		if !v.IsNumber() || v.Tag() != TagNumber {
			t.Fatalf("NumberValue(%v) tag = %v", f, v.Tag())
		}
		got := v.Num()
		if math.IsNaN(f) {
			if !math.IsNaN(got) {
				t.Fatalf("NaN(%#x) round-tripped to %v", math.Float64bits(f), got)
			}
			// NaN payloads are unobservable in JS; the representation may
			// canonicalize them but must keep NaN-ness and non-reflexivity.
			if StrictEquals(v, v) {
				t.Fatalf("NaN === NaN for bits %#x", math.Float64bits(f))
			}
			continue
		}
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("number %v (bits %#x) round-tripped to %v (bits %#x)",
				f, math.Float64bits(f), got, math.Float64bits(got))
		}
		if !StrictEquals(v, NumberValue(f)) {
			t.Fatalf("%v !== itself through the representation", f)
		}
		// The embedding boundary preserves the same bits.
		back := FromGo(v.ToGo())
		if math.Float64bits(back.Num()) != math.Float64bits(f) {
			t.Fatalf("ToGo/FromGo changed %v to %v", f, back.Num())
		}
	}
}

// TestNegativeZeroDistinctions: -0 and +0 are === but sign-observable
// through division, and both stringify to "0" (which is why -0 as a
// property key must read the same slot as 0 — covered end-to-end in the
// differential corpus).
func TestNegativeZeroDistinctions(t *testing.T) {
	negZero := math.Copysign(0, -1)
	nz := NumberValue(negZero)
	pz := NumberValue(0)
	if !StrictEquals(nz, pz) {
		t.Fatal("-0 === 0 must hold")
	}
	if !math.Signbit(nz.Num()) {
		t.Fatal("the representation dropped -0's sign bit")
	}
	if math.Signbit(pz.Num()) {
		t.Fatal("+0 acquired a sign bit")
	}
	if got := printer.FormatNumber(nz.Num()); got != "0" {
		t.Fatalf("String(-0) = %q, want \"0\"", got)
	}
	if q := 1 / nz.Num(); !math.IsInf(q, -1) {
		t.Fatalf("1/-0 = %v through the representation, want -Infinity", q)
	}
}

// TestSafeIntegerBoundary pins 2^53±1 exactness: 2^53-1 and 2^53 are
// distinct, 2^53+1 is not representable and collapses onto 2^53 — the
// same collapse interface boxing had, since both store an IEEE double.
func TestSafeIntegerBoundary(t *testing.T) {
	maxSafe := float64(1<<53 - 1)
	if StrictEquals(NumberValue(maxSafe), NumberValue(maxSafe+1)) {
		t.Fatal("2^53-1 and 2^53 must differ")
	}
	if !StrictEquals(NumberValue(maxSafe+1), NumberValue(maxSafe+2)) {
		t.Fatal("2^53 and 2^53+1 must collapse (IEEE 754), as before the change")
	}
	if s := printer.FormatNumber(maxSafe); s != "9007199254740991" {
		t.Fatalf("String(2^53-1) = %q", s)
	}
}

// TestStringRoundTripAndIdentity: strings keep exact content, aliasing the
// original bytes (no copy), with payload equality independent of how the
// equal content was produced.
func TestStringRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	cases := []string{"", "a", "hello", strings.Repeat("x", 4096), "\x00\xff", "héllo wörld", "0", "-0", "NaN"}
	for i := 0; i < 512; i++ {
		n := rnd.Intn(64)
		b := make([]byte, n)
		rnd.Read(b)
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		v := StringValue(s)
		if !v.IsString() {
			t.Fatalf("StringValue(%q) tag = %v", s, v.Tag())
		}
		if got := v.Str(); got != s {
			t.Fatalf("string %q round-tripped to %q", s, got)
		}
		if !StrictEquals(v, StringValue(s)) {
			t.Fatalf("%q !== itself", s)
		}
		// Identity fast path: a Value rebuilt from the same Go string keeps
		// the same data pointer — comparisons of interned names are a
		// pointer check, not a byte scan.
		if len(s) > 0 {
			w := StringValue(s)
			if v.ptr != w.ptr {
				t.Fatalf("same Go string produced different payload pointers for %q", s)
			}
		}
		// Content equality must hold across distinct backing arrays too.
		copied := StringValue(string(append([]byte(nil), s...)))
		if !StrictEquals(v, copied) {
			t.Fatalf("equal content in different backing arrays compared unequal: %q", s)
		}
		if got := FromGo(v.ToGo()); !StrictEquals(v, got) {
			t.Fatalf("ToGo/FromGo changed %q", s)
		}
	}
}

// TestStringAliasesBacking verifies the no-copy claim: the Value's payload
// pointer is the original string's data pointer, and substrings of a large
// string stay views.
func TestStringAliasesBacking(t *testing.T) {
	s := strings.Repeat("abc", 100)
	v := StringValue(s)
	if v.ptr != unsafe.Pointer(unsafe.StringData(s)) {
		t.Fatal("StringValue copied the string payload")
	}
	sub := s[3:9]
	w := StringValue(sub)
	if w.ptr != unsafe.Pointer(unsafe.StringData(sub)) || w.Str() != "abcabc" {
		t.Fatal("substring Value does not alias the parent backing array")
	}
}

// TestBoolNullUndefined pins the small classes and the zero-value rule.
func TestBoolNullUndefined(t *testing.T) {
	if !True.IsBool() || !True.Bool() || !False.IsBool() || False.Bool() {
		t.Fatal("True/False payloads wrong")
	}
	if !StrictEquals(True, BoolValue(true)) || !StrictEquals(False, BoolValue(false)) {
		t.Fatal("BoolValue does not intern to True/False equivalents")
	}
	if StrictEquals(True, False) {
		t.Fatal("true === false")
	}
	if !Null.IsNull() || Null.IsUndefined() {
		t.Fatal("Null misclassified")
	}
	if !Undefined.IsUndefined() || Undefined.IsNull() {
		t.Fatal("Undefined misclassified")
	}
	if StrictEquals(Null, Undefined) {
		t.Fatal("null === undefined must be false (loose == handles nullish)")
	}
	if !Null.IsNullish() || !Undefined.IsNullish() || NumberValue(0).IsNullish() {
		t.Fatal("IsNullish wrong")
	}
}

// reprSamples is one representative per distinguishable value, used for
// the lattice cross-check below. src is the JavaScript literal producing
// the same value inside the engine.
type reprSample struct {
	name string
	src  string
	v    Value
}

func reprLattice(in *Interp) []reprSample {
	obj := in.NewPlainObject()
	return []reprSample{
		{"undefined", "undefined", Undefined},
		{"null", "null", Null},
		{"true", "true", True},
		{"false", "false", False},
		{"zero", "0", NumberValue(0)},
		{"negzero", "-0", NumberValue(math.Copysign(0, -1))},
		{"one", "1", NumberValue(1)},
		{"nan", "NaN", NumberValue(math.NaN())},
		{"inf", "Infinity", NumberValue(math.Inf(1))},
		{"maxsafe", "9007199254740991", NumberValue(1<<53 - 1)},
		{"emptystr", `""`, StringValue("")},
		{"str", `"s"`, StringValue("s")},
		{"strzero", `"0"`, StringValue("0")},
		{"obj", "window_obj", ObjectValue(obj)},
	}
}

// TestTypeofStrictEqualityLattice cross-checks the Go-level TypeOf and
// StrictEquals against the engine evaluating the identical literals — the
// tree-walker's `typeof` and `===` ran on the interface{} representation
// before this change and their observable results are the spec the tagged
// representation must reproduce.
func TestTypeofStrictEqualityLattice(t *testing.T) {
	var buf bytes.Buffer
	in := New(Options{Out: &buf})
	samples := reprLattice(in)
	in.DefineGlobal("window_obj", samples[len(samples)-1].v)

	wantTypeof := map[string]string{
		"undefined": "undefined", "null": "object", "true": "boolean",
		"false": "boolean", "zero": "number", "negzero": "number",
		"one": "number", "nan": "number", "inf": "number",
		"maxsafe": "number", "emptystr": "string", "str": "string",
		"strzero": "string", "obj": "object",
	}

	var src strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&src, "console.log(%q, typeof (%s));\n", s.name, s.src)
	}
	for _, a := range samples {
		for _, b := range samples {
			fmt.Fprintf(&src, "console.log(%q, (%s) === (%s));\n", a.name+"/"+b.name, a.src, b.src)
		}
	}
	prog, err := parser.Parse(src.String())
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}

	engine := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		k, v, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad engine line %q", line)
		}
		engine[k] = v
	}

	for _, s := range samples {
		goTypeof := TypeOf(s.v)
		if goTypeof != wantTypeof[s.name] {
			t.Errorf("TypeOf(%s) = %q, want %q", s.name, goTypeof, wantTypeof[s.name])
		}
		if engine[s.name] != goTypeof {
			t.Errorf("engine typeof(%s) = %q, Go TypeOf = %q — representation diverged from engine",
				s.name, engine[s.name], goTypeof)
		}
	}
	for _, a := range samples {
		for _, b := range samples {
			goEq := StrictEquals(a.v, b.v)
			if got := engine[a.name+"/"+b.name]; got != fmt.Sprint(goEq) {
				t.Errorf("engine (%s === %s) = %s, Go StrictEquals = %v",
					a.name, b.name, got, goEq)
			}
			// Tag discipline: cross-class strict equality is always false.
			if a.v.Tag() != b.v.Tag() && goEq {
				t.Errorf("cross-tag StrictEquals(%s, %s) = true", a.name, b.name)
			}
		}
	}
}

// TestFromGoToGo pins the embedding conversion boundary: the Go types a
// host naturally passes map onto the expected tags and back.
func TestFromGoToGo(t *testing.T) {
	in := newTestInterp()
	o := in.NewPlainObject()
	cases := []struct {
		in   interface{}
		tag  Tag
		back interface{}
	}{
		{nil, TagNull, nil},
		{true, TagBool, true},
		{false, TagBool, false},
		{3.5, TagNumber, 3.5},
		{int(7), TagNumber, 7.0},
		{int64(1 << 40), TagNumber, float64(1 << 40)},
		{uint32(9), TagNumber, 9.0},
		{"hi", TagString, "hi"},
		{o, TagObject, o},
	}
	for _, c := range cases {
		v := FromGo(c.in)
		if v.Tag() != c.tag {
			t.Errorf("FromGo(%v) tag = %v, want %v", c.in, v.Tag(), c.tag)
		}
		if got := v.ToGo(); got != c.back {
			t.Errorf("ToGo(FromGo(%v)) = %v, want %v", c.in, got, c.back)
		}
	}
	if !FromGo(struct{}{}).IsUndefined() {
		t.Error("FromGo of an unsupported type must be undefined")
	}
	if Undefined.ToGo() != nil {
		t.Error("ToGo(undefined) must be nil")
	}
	// A Value passes through unchanged.
	if !StrictEquals(FromGo(StringValue("x")), StringValue("x")) {
		t.Error("FromGo(Value) must be the identity")
	}
}

// TestLooseEqualsLattice pins the == corners around the new representation
// (nullish pairing, bool/number normalization, string/number coercion).
func TestLooseEqualsLattice(t *testing.T) {
	in := newTestInterp()
	eq := func(a, b Value) bool {
		r, err := in.looseEquals(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if !eq(Null, Undefined) || !eq(Undefined, Null) {
		t.Fatal("null == undefined must hold")
	}
	if eq(Null, NumberValue(0)) || eq(Undefined, NumberValue(0)) {
		t.Fatal("nullish == 0 must be false")
	}
	if !eq(NumberValue(1), True) || !eq(NumberValue(0), False) {
		t.Fatal("bool normalization broken")
	}
	if !eq(StringValue("42"), NumberValue(42)) {
		t.Fatal("string/number coercion broken")
	}
	if eq(NumberValue(math.NaN()), NumberValue(math.NaN())) {
		t.Fatal("NaN == NaN must be false")
	}
	if !eq(StringValue(""), NumberValue(0)) {
		t.Fatal(`"" == 0 must hold`)
	}
}

// TestStringLengthCap: growth paths throw a catchable RangeError before a
// string could ever exceed the representation's 32-bit length field — the
// guest must never be able to panic the host through concatenation.
func TestStringLengthCap(t *testing.T) {
	const src = `
var out = [];
try { "abc".repeat(1e18); } catch (e) { out.push(e.name); }
try {
  // One repeat builds a just-over-half-cap string; a single self-concat
  // must then throw instead of wrapping the 32-bit length.
  var s = "x".repeat(536870913); // 2^29 + 1
  s = s + s;
  out.push("no-throw");
} catch (e2) { out.push(e2.name); }
console.log(out.join(","));
`
	for _, bc := range []bool{false, true} {
		var buf bytes.Buffer
		in := New(Options{Out: &buf, Bytecode: bc})
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Program(prog)
		if err := in.RunProgram(prog); err != nil {
			t.Fatal(err)
		}
		if got := buf.String(); got != "RangeError,RangeError\n" {
			t.Errorf("bytecode=%v: string cap output %q, want two RangeErrors", bc, got)
		}
	}
}

// TestDisplayAndToString pins the user-visible renderings of each class
// through the tagged representation (console.log and string coercion).
func TestDisplayAndToString(t *testing.T) {
	in := newTestInterp()
	cases := []struct {
		v    Value
		want string
	}{
		{Undefined, "undefined"},
		{Null, "null"},
		{True, "true"},
		{False, "false"},
		{NumberValue(0), "0"},
		{NumberValue(math.Copysign(0, -1)), "0"},
		{NumberValue(math.NaN()), "NaN"},
		{NumberValue(math.Inf(1)), "Infinity"},
		{NumberValue(-1.5), "-1.5"},
		{StringValue("x"), "x"},
	}
	for _, c := range cases {
		if got := in.Display(c.v); got != c.want {
			t.Errorf("Display(%v) = %q, want %q", c.v, got, c.want)
		}
		s, err := in.ToStringValue(c.v)
		if err != nil {
			t.Fatal(err)
		}
		if s != c.want {
			t.Errorf("ToStringValue(%v) = %q, want %q", c.v, s, c.want)
		}
	}
}
