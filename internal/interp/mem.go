package interp

import "errors"

// The allocation meter. CPU (MaxSteps), wall time, and output are policed
// per-tenant by the supervisor; this meter closes the remaining hole: a
// guest building a giant object graph (or an unbounded string) exhausting
// host memory. Every Value-graph growth path — object and closure creation,
// property addition, array element growth, string construction, environment
// frames — charges an approximate byte cost against a per-realm counter;
// the budget itself is only checked at the statement-boundary step check,
// so the hot path stays the single `Steps > stepLimit` compare both engines
// already pay. A charge that crosses the budget forces that compare to trip
// at the next statement (stepLimit ← 0), where stepBoundary converts it to
// ErrMemLimit — a plain Go error, like ErrStepBudget, so guest try/catch
// can never intercept it.
//
// Accounting semantics: the meter counts bytes *allocated*, not bytes live —
// there is no GC integration, so garbage is never subtracted. The one
// exception is the call-frame pool: frames are charged on acquire and
// credited on release (an escaped frame is never released, so captured
// environments stay charged), which keeps deep call traffic from eroding
// the budget of a well-behaved long-running guest. The meter therefore
// upper-bounds the live guest graph: a guest under budget cannot have
// built more than MemBudget bytes of reachable state. Overshoot past the
// budget is bounded by what a single statement can allocate, and the
// unbounded single-statement allocators (new Array(n), array length
// growth, string concatenation) pre-check the budget with checkMem before
// allocating, so a hostile allocator cannot take the host down between two
// statement boundaries.
//
// The meter is cumulative across pause/resume, exactly like the step
// budget: it lives on the Interp, and nothing in the park/restore path
// resets it. A corollary of allocated-not-live accounting: the stopify
// capture machinery is metered too, since continuation frames are built by
// instrumented guest code — each preemption capture bills the tenant a few
// KB (depth-dependent, ~6-9 KB at paper-scale stacks). Budgets are
// allocation budgets, not heap sizes; size them in megabytes (stopifyd
// defaults to 256 MB), never in the tens of KB of a single hot loop's
// scheduler traffic.

// ErrMemLimit aborts execution when the realm's allocation meter exceeds
// Options.MemBudget. Like ErrStepBudget it is a plain Go error, not a
// Thrown, so it propagates through guest try/catch uncaught.
var ErrMemLimit = errors.New("interp: memory budget exhausted")

// Approximate per-allocation byte costs. These deliberately round up to
// cover Go allocator size classes and the side structures (shape table
// growth, map buckets) the meter does not model individually.
const (
	memValueBytes  = 24  // one Value: array element, env slot
	memPropBytes   = 64  // one property slot (Prop + shape/index amortization)
	memObjectBytes = 144 // Object header
	memFuncBytes   = 176 // funcObject: co-allocated Object + Closure
	memFrameBytes  = 64  // Env header (slot storage charged per Value)
)

// chargeMem records n bytes of Value-graph growth. When the charge crosses
// the budget it arms the statement-boundary check (stepLimit ← 0) instead
// of failing here: growth paths are expression-level and have no way to
// abort mid-statement, but the very next statement boundary does.
func (in *Interp) chargeMem(n int) {
	in.memUsed += uint64(n)
	if in.memBudget != 0 && in.memUsed > in.memBudget {
		in.stepLimit = 0
	}
}

// creditMem returns n bytes to the meter (frame-pool release). Saturating:
// the approximate cost model must never wrap the counter.
func (in *Interp) creditMem(n int) {
	u := uint64(n)
	if in.memUsed >= u {
		in.memUsed -= u
	} else {
		in.memUsed = 0
	}
}

// checkMem reports ErrMemLimit if charging n more bytes would exceed the
// budget, without charging. The unbounded single-statement growth paths
// (new Array(n), array length growth, string concatenation) call it BEFORE
// allocating, so a hostile `new Array(1e9)` dies by policy instead of by
// host OOM.
func (in *Interp) checkMem(n int) error {
	if in.memBudget != 0 && in.memUsed+uint64(n) > in.memBudget {
		in.stepLimit = 0 // the statement boundary confirms the verdict
		return ErrMemLimit
	}
	return nil
}

// SetMemBudget arms (or, with 0, disarms) the allocation budget in bytes.
// Executing goroutine only, like SetMaxSteps; the counter is cumulative, so
// raising the budget extends it across resumes.
func (in *Interp) SetMemBudget(n uint64) {
	in.memBudget = n
	in.recomputeStepLimit()
}

// MemUsed reports bytes charged so far (owner-goroutine only; a scheduler
// snapshots it between turns).
func (in *Interp) MemUsed() uint64 { return in.memUsed }

// ChargeMem charges n bytes from the host side — the embedding analogue of
// a guest allocation, used by host natives that build guest-visible
// structures and by the fault-injection harness to simulate allocation
// storms. Executing goroutine only.
func (in *Interp) ChargeMem(n uint64) {
	in.memUsed += n
	if in.memBudget != 0 && in.memUsed > in.memBudget {
		in.stepLimit = 0
	}
}

// ResetMemMeter zeroes the meter. The Stopify core calls it once after the
// prelude has executed, so the budget measures the guest program's own
// growth rather than the runtime's fixed setup.
func (in *Interp) ResetMemMeter() {
	in.memUsed = 0
	in.recomputeStepLimit()
}
