package interp

import (
	"testing"

	"repro/internal/ast"
)

// Shape/IC invariant tests: transition sharing, cache hits after a shape
// match, and invalidation on delete, accessor installation, and prototype
// mutation. These poke the unexported machinery directly; end-to-end
// property semantics are covered in internal/core.

func newTestInterp() *Interp {
	return New(Options{})
}

// num / str build tagged test values tersely.
func num(f float64) Value { return NumberValue(f) }
func str(s string) Value  { return StringValue(s) }
func isNum(v Value, f float64) bool {
	return v.IsNumber() && StrictEquals(v, NumberValue(f))
}
func isStr(v Value, s string) bool {
	return v.IsString() && v.Str() == s
}

func TestShapeTransitionSharing(t *testing.T) {
	in := newTestInterp()
	a := in.NewPlainObject()
	b := in.NewPlainObject()
	a.SetOwn("x", num(1))
	a.SetOwn("y", num(2))
	b.SetOwn("x", num(3))
	b.SetOwn("y", num(4))
	if a.shape == nil || a.shape != b.shape {
		t.Fatalf("objects built along the same path must share a shape: %p vs %p", a.shape, b.shape)
	}
	c := in.NewPlainObject()
	c.SetOwn("y", num(5)) // different insertion order → different shape
	c.SetOwn("x", num(6))
	if c.shape == a.shape {
		t.Fatal("different insertion order must not share the shape")
	}
	if got := a.shape.keys; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("shape keys = %v, want [x y]", got)
	}
}

func TestShapeDeleteRebuildsAndResharesTree(t *testing.T) {
	in := newTestInterp()
	a := in.NewPlainObject()
	a.SetOwn("x", num(1))
	a.SetOwn("y", num(2))
	a.SetOwn("z", num(3))
	before := a.shape
	if !a.Delete("y") {
		t.Fatal("Delete(y) reported the property missing")
	}
	if a.shape == before {
		t.Fatal("delete must move the object to a different shape")
	}
	// The rebuilt shape reuses the shared transition tree: an object built
	// as {x, z} directly lands on the same shape.
	b := in.NewPlainObject()
	b.SetOwn("x", num(0))
	b.SetOwn("z", num(0))
	if a.shape != b.shape {
		t.Fatalf("post-delete shape should rejoin the tree: %p vs %p", a.shape, b.shape)
	}
	if p := a.Own("z"); p == nil || !isNum(p.Value, 3) {
		t.Fatal("slots were not compacted correctly on delete")
	}
	if a.Own("y") != nil {
		t.Fatal("deleted property still present")
	}
}

func TestShapeAccessorConversionChangesShape(t *testing.T) {
	in := newTestInterp()
	a := in.NewPlainObject()
	a.SetOwn("x", num(1))
	before := a.shape
	getter := in.NewNative("g", func(in *Interp, this Value, args []Value) (Value, error) {
		return NumberValue(42), nil
	})
	a.SetAccessor("x", getter, nil, true)
	if a.shape == before {
		t.Fatal("data→accessor conversion must change the shape")
	}
	mid := a.shape
	a.SetOwn("x", num(2))
	if a.shape == mid {
		t.Fatal("accessor→data conversion must change the shape")
	}
	// Kind rides on the transition edge, so the conversion back lands on
	// the canonical data shape — shared with objects built as {x: data}.
	if a.shape != before {
		t.Fatalf("accessor→data conversion should rejoin the data-shaped tree: %p vs %p", a.shape, before)
	}
	// And an object built directly with an accessor shares the accessor
	// shape, never the data one.
	b := in.NewPlainObject()
	b.SetAccessor("x", getter, nil, true)
	if b.shape != mid {
		t.Fatalf("accessor-built object should share the accessor shape: %p vs %p", b.shape, mid)
	}
	if b.shape == before {
		t.Fatal("accessor-bearing object must not share a shape with data-shaped objects")
	}
}

func TestSetICNeverBypassesAccessorSharingCreationPath(t *testing.T) {
	// Regression: a warm set-IC site filled by data-shaped objects must not
	// write through the cached slot when it later sees an object whose same-
	// named property is an accessor. Before transition edges encoded kind,
	// {x: data} and {set x(){}} shared a shape and the fast path silently
	// overwrote the accessor slot's Value.
	in := newTestInterp()
	const site = 29
	write := func(o *Object, v Value) {
		if err := in.setMemberSite(ObjectValue(o), "x", v, site); err != nil {
			t.Fatal(err)
		}
	}
	a := in.NewPlainObject()
	a.SetOwn("x", num(0))
	write(a, num(1)) // fills the own-hit entry
	write(a, num(2)) // warm hit
	if !isNum(a.Own("x").Value, 2) {
		t.Fatal("warm data write failed")
	}
	got := Undefined
	setter := in.NewNative("s", func(in *Interp, this Value, args []Value) (Value, error) {
		got = args[0]
		return Undefined, nil
	})
	b := in.NewPlainObject()
	b.SetAccessor("x", nil, setter, true)
	if b.shape == a.shape {
		t.Fatal("accessor object must not share the data object's shape")
	}
	write(b, num(3))
	if !isNum(got, 3) {
		t.Fatalf("setter not invoked through warm set site; got %v", got)
	}
	if p := b.Own("x"); p == nil || p.Setter == nil || !p.Value.IsUndefined() {
		t.Fatalf("accessor slot corrupted by cached write: %+v", p)
	}
}

func TestDeleteAndSetProtoPreserveAccessorShape(t *testing.T) {
	// Regression: Delete and SetProto rebuild the shape by replaying
	// transition edges; the replay must preserve each key's kind so an
	// accessor-bearing object never rejoins the data-shaped tree.
	in := newTestInterp()
	const site = 31
	write := func(o *Object, v Value) {
		if err := in.setMemberSite(ObjectValue(o), "x", v, site); err != nil {
			t.Fatal(err)
		}
	}
	got := Undefined
	setter := in.NewNative("s", func(in *Interp, this Value, args []Value) (Value, error) {
		got = args[0]
		return Undefined, nil
	})

	// Warm the site with data-shaped {x} objects.
	d := in.NewPlainObject()
	d.SetOwn("x", num(0))
	write(d, num(1))
	write(d, num(2))

	// o: x converted to accessor in place, then another key deleted — the
	// rebuild must keep x's accessor-ness in the shape identity.
	o := in.NewPlainObject()
	o.SetOwn("x", num(0))
	o.SetOwn("y", num(0))
	o.SetAccessor("x", nil, setter, true)
	o.Delete("y")
	if o.shape == d.shape {
		t.Fatal("post-delete shape must not rejoin the data-shaped tree")
	}
	write(o, num(9))
	if !isNum(got, 9) {
		t.Fatalf("setter not invoked after delete-rebuild; got %v", got)
	}
	if p := o.Own("x"); p == nil || p.Setter == nil || !p.Value.IsUndefined() {
		t.Fatalf("accessor slot corrupted after delete-rebuild: %+v", p)
	}

	// Same for the SetProto re-rooting rebuild. Warm the site with a data
	// {x} object under the NEW prototype: q's rebuilt shape lives in p2's
	// transition tree, so a kind-dropping rebuild would land q exactly on
	// the warmed data shape and the fast path would bypass the setter.
	got = Undefined
	p2 := in.NewPlainObject()
	e := NewObject(p2)
	e.SetOwn("x", num(0))
	write(e, num(1))
	write(e, num(2))
	q := in.NewPlainObject()
	q.SetOwn("x", num(0))
	q.SetAccessor("x", nil, setter, true)
	q.SetProto(p2)
	if q.shape == e.shape {
		t.Fatal("post-SetProto shape must not rejoin the new prototype's data-shaped tree")
	}
	write(q, num(7))
	if !isNum(got, 7) {
		t.Fatalf("setter not invoked after SetProto rebuild; got %v", got)
	}
}

func TestGetICHitAndInvalidation(t *testing.T) {
	in := newTestInterp()
	const site = 7
	o := in.NewPlainObject()
	o.SetOwn("x", num(1))

	read := func() Value {
		v, err := in.getMemberSite(ObjectValue(o), "x", site)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := read(); !isNum(v, 1) {
		t.Fatalf("first read = %v", v)
	}
	c := in.icGetAt(site)
	if c.shape != o.shape || c.holder != nil || int(c.slot) != 0 {
		t.Fatalf("cache not filled with own hit: %+v", *c)
	}
	// Hit path: same shape, direct slot read.
	o.slots[0].Value = num(5)
	if v := read(); !isNum(v, 5) {
		t.Fatalf("cached read = %v, want 5", v)
	}
	// Delete invalidates via shape change.
	o.Delete("x")
	if !read().IsUndefined() {
		t.Fatal("read after delete must be undefined")
	}
	// Re-adding refills; converting to an accessor must then divert the
	// cached fast path to the getter.
	o.SetOwn("x", num(9))
	if v := read(); !isNum(v, 9) {
		t.Fatalf("read after re-add = %v", v)
	}
	getter := in.NewNative("g", func(in *Interp, this Value, args []Value) (Value, error) {
		return StringValue("from-getter"), nil
	})
	o.SetAccessor("x", getter, nil, true)
	if v := read(); !isStr(v, "from-getter") {
		t.Fatalf("read after accessor install = %v, want getter result", v)
	}
}

func TestGetICProtoHitAndProtoMutation(t *testing.T) {
	in := newTestInterp()
	const site = 11
	protoA := in.NewPlainObject()
	protoA.SetOwn("m", str("A"))
	o := NewObject(protoA)

	read := func() Value {
		v, err := in.getMemberSite(ObjectValue(o), "m", site)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := read(); !isStr(v, "A") {
		t.Fatalf("proto read = %v", v)
	}
	c := in.icGetAt(site)
	if c.holder != protoA {
		t.Fatalf("cache should record the proto holder, got %+v", *c)
	}
	if v := read(); !isStr(v, "A") {
		t.Fatalf("cached proto read = %v", v)
	}
	// Mutating the holder's layout invalidates via holder shape.
	protoA.SetOwn("other", num(1))
	if v := read(); !isStr(v, "A") {
		t.Fatalf("read after holder growth = %v", v)
	}
	// Replacing the prototype re-roots the receiver's shape; the stale
	// entry must miss.
	protoB := in.NewPlainObject()
	protoB.SetOwn("m", str("B"))
	o.SetProto(protoB)
	if v := read(); !isStr(v, "B") {
		t.Fatalf("read after SetProto = %v, want B", v)
	}
}

func TestGetICIntermediateShadowing(t *testing.T) {
	in := newTestInterp()
	const site = 13
	top := in.NewPlainObject()
	top.SetOwn("m", str("top"))
	mid := NewObject(top)
	o := NewObject(mid)

	read := func() Value {
		v, err := in.getMemberSite(ObjectValue(o), "m", site)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := read(); !isStr(v, "top") {
		t.Fatalf("chain read = %v", v)
	}
	// An object BETWEEN the receiver and the cached holder gains the key:
	// the protoEpoch guard must divert the next read to the new holder.
	mid.SetOwn("m", str("mid"))
	if v := read(); !isStr(v, "mid") {
		t.Fatalf("read after intermediate shadow = %v, want mid", v)
	}
}

func TestSetICTransitionAndAccessorInvalidation(t *testing.T) {
	in := newTestInterp()
	const site = 17
	proto := in.NewPlainObject()
	write := func(o *Object, v Value) {
		if err := in.setMemberSite(ObjectValue(o), "y", v, site); err != nil {
			t.Fatal(err)
		}
	}
	a := NewObject(proto)
	write(a, num(1)) // fills the transition entry
	b := NewObject(proto)
	write(b, num(2)) // transition hit
	if a.shape != b.shape {
		t.Fatal("transition writes should land both objects on the same shape")
	}
	if !isNum(b.Own("y").Value, 2) {
		t.Fatal("transition hit wrote the wrong slot")
	}
	write(b, num(3)) // own-hit path now
	if !isNum(b.Own("y").Value, 3) {
		t.Fatal("own-hit write failed")
	}
	// Installing a setter on the prototype must invalidate the cached
	// transition: the next write on a fresh object must call the setter
	// instead of shadowing.
	var got Value
	setter := in.NewNative("s", func(in *Interp, this Value, args []Value) (Value, error) {
		got = args[0]
		return Undefined, nil
	})
	proto.SetAccessor("y", nil, setter, true)
	fresh := NewObject(proto)
	write(fresh, num(9))
	if !isNum(got, 9) {
		t.Fatalf("setter did not run after accessor install on proto; got %v", got)
	}
	if fresh.Own("y") != nil {
		t.Fatal("write shadowed the proto setter")
	}
}

func TestGlobalCellCaching(t *testing.T) {
	in := newTestInterp()
	in.DefineGlobal("g", num(1))
	id := &ast.Ident{Name: "g", Ref: ast.RefGlobal, Site: 3}
	v, err := in.loadIdent(id, in.Global)
	if err != nil || !isNum(v, 1) {
		t.Fatalf("global read = %v, %v", v, err)
	}
	if in.icCellAt(3) == nil {
		t.Fatal("cell not cached after first lookup")
	}
	// Redefinition must write through the same cell so the cache stays
	// coherent.
	in.DefineGlobal("g", num(2))
	v, _ = in.loadIdent(id, in.Global)
	if !isNum(v, 2) {
		t.Fatalf("cached global read = %v, want 2", v)
	}
	in.storeIdent(id, num(3), in.Global)
	if got, _ := in.Global.Lookup("g"); !isNum(got, 3) {
		t.Fatalf("store through cached cell = %v, want 3", got)
	}
}

func TestToUint32LargeMagnitude(t *testing.T) {
	cases := []struct {
		in  float64
		i32 int32
		u32 uint32
	}{
		{1e20, 1661992960, 1661992960},
		{-1e20, -1661992960, 2632974336},
		{4294967296, 0, 0},
		{-1, -1, 4294967295},
		{3.7, 3, 3},
		{-3.7, -3, 4294967293},
	}
	for _, c := range cases {
		if got := ToInt32(c.in); got != c.i32 {
			t.Errorf("ToInt32(%v) = %d, want %d", c.in, got, c.i32)
		}
		if got := ToUint32(c.in); got != c.u32 {
			t.Errorf("ToUint32(%v) = %d, want %d", c.in, got, c.u32)
		}
	}
}

func TestSetICTransitionBumpsEpochForProtoReceiver(t *testing.T) {
	in := newTestInterp()
	const getSite, setSite = 19, 23
	// foo lives on a grandparent; P sits between it and the reader C.
	top := in.NewPlainObject()
	top.SetOwn("foo", num(1))
	p := NewObject(top)
	c := NewObject(p)

	read := func() Value {
		v, err := in.getMemberSite(ObjectValue(c), "foo", getSite)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := read(); !isNum(v, 1) {
		t.Fatalf("chain read = %v", v)
	}
	read() // cache hit; P is marked usedAsProto

	// D shares P's (empty) shape; writing through the site fills the
	// transition entry for that shape.
	d := NewObject(top)
	if err := in.setMemberSite(ObjectValue(d), "foo", num(5), setSite); err != nil {
		t.Fatal(err)
	}
	// The same site now writes to P via the cached transition fast path;
	// the epoch bump there must invalidate C's chain entry.
	if err := in.setMemberSite(ObjectValue(p), "foo", num(2), setSite); err != nil {
		t.Fatal(err)
	}
	if v := read(); !isNum(v, 2) {
		t.Fatalf("read after transition-IC write to prototype = %v, want 2 (shadowing P.foo)", v)
	}
}
