// Package stats provides the summary statistics the paper's evaluation
// reports: means with 95% confidence intervals (Figure 2, 12, 15), medians
// (Figure 10's legends), standard deviations (Figure 7), and empirical
// CDFs (Figures 10 and 13).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation; 0 for fewer than two
// samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (normal approximation, 1.96·σ/√n), matching the error bars in the
// paper's figures.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Stddev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the middle value (average of the two middle values for
// even-sized inputs); NaN for empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical cumulative distribution of xs, one point per
// sample — the curves of Figures 10 and 13.
func CDF(xs []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// GeoMean returns the geometric mean; NaN when any value is non-positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
