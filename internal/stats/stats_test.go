package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty mean should be NaN")
	}
}

func TestStddev(t *testing.T) {
	if !almost(Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395) {
		t.Errorf("stddev = %v", Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("single sample stddev should be 0")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 14, 16}
	want := 1.96 * Stddev(xs) / 2
	if !almost(CI95(xs), want) {
		t.Errorf("ci95 = %v want %v", CI95(xs), want)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median")
	}
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 5) {
		t.Error("quantile extremes")
	}
	if !almost(Quantile(xs, 0.25), 2) {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatal("cdf length")
	}
	if pts[0].X != 1 || !almost(pts[0].P, 1.0/3) {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[2].X != 3 || !almost(pts[2].P, 1) {
		t.Errorf("last point %+v", pts[2])
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("geomean")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean with non-positive input should be NaN")
	}
}

// Property: the median is bounded by min and max, and sorting is not
// observable (input order must not matter).
func TestMedianProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		lo, hi := clean[0], clean[0]
		for _, x := range clean {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if m < lo || m > hi {
			return false
		}
		// reverse and recompute
		rev := make([]float64, len(clean))
		for i, x := range clean {
			rev[len(clean)-1-i] = x
		}
		return almost(Median(rev), m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone in both coordinates and ends at P=1.
func TestCDFProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		pts := CDF(clean)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].P < pts[i-1].P {
				return false
			}
		}
		return almost(pts[len(pts)-1].P, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
