package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func parseErr(t *testing.T, src string) {
	t.Helper()
	if _, err := Parse(src); err == nil {
		t.Errorf("Parse(%q) should fail", src)
	}
}

func TestVarDeclarations(t *testing.T) {
	p := parse(t, "var x = 1, y, z = x + 2;")
	d, ok := p.Body[0].(*ast.VarDecl)
	if !ok || len(d.Decls) != 3 {
		t.Fatalf("want VarDecl with 3 declarators, got %#v", p.Body[0])
	}
	if d.Decls[1].Name != "y" || d.Decls[1].Init != nil {
		t.Errorf("second declarator should be bare y")
	}
}

func TestLetConstNormalizeToVar(t *testing.T) {
	p := parse(t, "let a = 1; const b = 2;")
	for i := 0; i < 2; i++ {
		if _, ok := p.Body[i].(*ast.VarDecl); !ok {
			t.Errorf("statement %d should normalize to VarDecl", i)
		}
	}
}

func TestPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*ast.Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %q, want +", add.Op)
	}
	mul := add.R.(*ast.Binary)
	if mul.Op != "*" {
		t.Fatalf("right op = %q, want *", mul.Op)
	}
}

func TestLogicalVsBitwise(t *testing.T) {
	e, err := ParseExpr("a || b && c | d")
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*ast.Logical)
	if or.Op != "||" {
		t.Fatalf("top = %q, want ||", or.Op)
	}
	and := or.R.(*ast.Logical)
	if and.Op != "&&" {
		t.Fatalf("right = %q, want &&", and.Op)
	}
}

func TestExponentRightAssoc(t *testing.T) {
	e, err := ParseExpr("2 ** 3 ** 2")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*ast.Binary)
	if _, ok := top.R.(*ast.Binary); !ok {
		t.Error("** should be right-associative")
	}
}

func TestTernaryAndAssignment(t *testing.T) {
	e, err := ParseExpr("x = a ? b : c")
	if err != nil {
		t.Fatal(err)
	}
	asn := e.(*ast.Assign)
	if _, ok := asn.Value.(*ast.Cond); !ok {
		t.Error("assignment value should be conditional")
	}
}

func TestCompoundAssignment(t *testing.T) {
	for _, op := range []string{"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="} {
		e, err := ParseExpr("x " + op + " 2")
		if err != nil {
			t.Fatalf("op %s: %v", op, err)
		}
		if e.(*ast.Assign).Op != op {
			t.Errorf("op = %q, want %q", e.(*ast.Assign).Op, op)
		}
	}
}

func TestMemberChains(t *testing.T) {
	e, err := ParseExpr("a.b[c].d(e)(f)")
	if err != nil {
		t.Fatal(err)
	}
	outer := e.(*ast.Call)
	inner := outer.Callee.(*ast.Call)
	m := inner.Callee.(*ast.Member)
	if m.Name != "d" {
		t.Errorf("member = %q, want d", m.Name)
	}
}

func TestKeywordPropertyAccess(t *testing.T) {
	if _, err := ParseExpr("a.default"); err != nil {
		t.Errorf("keyword property name should parse: %v", err)
	}
}

func TestNewExpressions(t *testing.T) {
	e, err := ParseExpr("new Foo(1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	n := e.(*ast.New)
	if len(n.Args) != 2 {
		t.Errorf("args = %d, want 2", len(n.Args))
	}

	e, err = ParseExpr("new a.b.C()")
	if err != nil {
		t.Fatal(err)
	}
	n = e.(*ast.New)
	if _, ok := n.Callee.(*ast.Member); !ok {
		t.Error("new callee should be member chain")
	}

	e, err = ParseExpr("new Foo")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*ast.New).Args) != 0 {
		t.Error("new without parens should have no args")
	}
}

func TestNewTarget(t *testing.T) {
	p := parse(t, "function F() { return new.target; }")
	fd := p.Body[0].(*ast.FuncDecl)
	ret := fd.Fn.Body[0].(*ast.Return)
	if _, ok := ret.Arg.(*ast.NewTarget); !ok {
		t.Error("expected new.target node")
	}
	parseErr(t, "var x = new.bogus;")
}

func TestArrowFunctions(t *testing.T) {
	e, err := ParseExpr("(a, b) => a + b")
	if err != nil {
		t.Fatal(err)
	}
	fn := e.(*ast.Func)
	if !fn.Arrow || len(fn.Params) != 2 {
		t.Fatalf("want 2-param arrow, got %#v", fn)
	}
	if _, ok := fn.Body[0].(*ast.Return); !ok {
		t.Error("expression arrow body should be a return")
	}

	e, err = ParseExpr("x => { return x; }")
	if err != nil {
		t.Fatal(err)
	}
	if !e.(*ast.Func).Arrow {
		t.Error("single-param arrow should parse")
	}

	e, err = ParseExpr("() => 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*ast.Func).Params) != 0 {
		t.Error("zero-param arrow")
	}
}

func TestParenNotArrow(t *testing.T) {
	e, err := ParseExpr("(a + b) * c")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ast.Binary); !ok {
		t.Error("parenthesized expr should not be mistaken for arrow")
	}
}

func TestObjectLiterals(t *testing.T) {
	e, err := ParseExpr(`{ a: 1, "b c": 2, 3: 4, get x() { return 1; }, set x(v) { }, if: 5 }`)
	if err != nil {
		t.Fatal(err)
	}
	obj := e.(*ast.Object)
	if len(obj.Props) != 6 {
		t.Fatalf("props = %d, want 6", len(obj.Props))
	}
	if obj.Props[3].Kind != ast.PropGet || obj.Props[4].Kind != ast.PropSet {
		t.Error("getter/setter kinds wrong")
	}
	if obj.Props[5].Key != "if" {
		t.Error("keyword key should be allowed")
	}
}

func TestGetAsPlainKey(t *testing.T) {
	e, err := ParseExpr("{ get: 1, set: 2 }")
	if err != nil {
		t.Fatal(err)
	}
	obj := e.(*ast.Object)
	if obj.Props[0].Kind != ast.PropInit || obj.Props[0].Key != "get" {
		t.Error("`get: 1` should be a plain property")
	}
}

func TestControlFlowStatements(t *testing.T) {
	src := `
if (a) { b(); } else if (c) d(); else { e(); }
while (x) { x--; }
do { y++; } while (y < 10);
for (var i = 0; i < 10; i++) f(i);
for (;;) { break; }
for (var k in obj) g(k);
for (k in obj) g(k);
outer: for (var j = 0; j < 3; j++) { continue outer; }
switch (v) { case 1: a(); break; case 2: default: b(); }
try { f(); } catch (e) { g(e); } finally { h(); }
throw new Error("x");
`
	p := parse(t, src)
	if len(p.Body) != 11 {
		t.Fatalf("statements = %d, want 11", len(p.Body))
	}
	if _, ok := p.Body[5].(*ast.ForIn); !ok {
		t.Error("for-in with var")
	}
	if fi, ok := p.Body[6].(*ast.ForIn); !ok || fi.Decl {
		t.Error("for-in without var")
	}
}

func TestASI(t *testing.T) {
	p := parse(t, "var a = 1\nvar b = 2\na = b")
	if len(p.Body) != 3 {
		t.Fatalf("ASI should yield 3 statements, got %d", len(p.Body))
	}
	// Restricted production: `return` followed by newline returns undefined.
	p = parse(t, "function f() { return\n1; }")
	fd := p.Body[0].(*ast.FuncDecl)
	ret := fd.Fn.Body[0].(*ast.Return)
	if ret.Arg != nil {
		t.Error("return followed by newline should have no argument")
	}
	parseErr(t, "var a = 1 var b = 2")
}

func TestPostfixNoNewline(t *testing.T) {
	// a ++ across a newline is a syntax error per ASI restricted production
	// (a; ++b is the actual parse — with b missing here it must fail).
	p := parse(t, "a\n++b")
	if len(p.Body) != 2 {
		t.Fatalf("newline before ++ should split statements, got %d", len(p.Body))
	}
}

func TestTrailingCommaInArgsAndArrays(t *testing.T) {
	if _, err := ParseExpr("f(1, 2)"); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExpr("[1, 2, 3]")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*ast.Array).Elems) != 3 {
		t.Error("array elems")
	}
}

func TestSequenceExpression(t *testing.T) {
	e, err := ParseExpr("(a, b, c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*ast.Seq).Exprs) != 3 {
		t.Error("sequence exprs")
	}
}

func TestLabeledStatement(t *testing.T) {
	p := parse(t, "loop: while (true) { break loop; }")
	l := p.Body[0].(*ast.Labeled)
	if l.Label != "loop" {
		t.Errorf("label = %q", l.Label)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"var = 1;",
		"if (a { }",
		"function () {}",
		"1 = 2;",
		"x++ ++;",
		"switch (v) { default: a(); default: b(); }",
		"try { }",
		"a.;",
		"f(,);",
		"do { } while",
		"throw\n1;",
	}
	for _, src := range bad {
		parseErr(t, src)
	}
}

func TestForInNoConfusionWithIn(t *testing.T) {
	// `in` is excluded from for-init expressions (the noIn flag), so the
	// initializer stops at x and the leftover `in` is a syntax error — the
	// same behaviour as real JavaScript engines. It must not crash.
	if _, err := Parse("for (var i = x in y; i < 2; i++) {}"); err == nil {
		t.Error("expected a parse error for `var i = x in y` inside for-init")
	}
	// An ordinary `in` operator inside parens is fine even in a for-init.
	if _, err := Parse("for (var i = (x in y); i < 2; i++) {}"); err != nil {
		t.Errorf("parenthesized in-operator should parse: %v", err)
	}
}

func TestDeeplyNested(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 50; i++ {
		b.WriteString("(1 + ")
	}
	b.WriteString("0")
	for i := 0; i < 50; i++ {
		b.WriteString(")")
	}
	if _, err := ParseExpr(b.String()); err != nil {
		t.Fatalf("deeply nested expression: %v", err)
	}
}

func TestPositionsRecorded(t *testing.T) {
	p := parse(t, "var x = 1;\nfunction f() { return 2; }")
	if p.Body[0].Position().Line != 1 {
		t.Error("first statement line")
	}
	if p.Body[1].Position().Line != 2 {
		t.Error("second statement line")
	}
}

func TestArrayElisions(t *testing.T) {
	cases := []struct {
		src   string
		holes []bool // per element: true = hole
	}{
		{"[,1]", []bool{true, false}},
		{"[1,,3]", []bool{false, true, false}},
		{"[1,,]", []bool{false, true}},
		{"[,]", []bool{true}},
		{"[1,]", []bool{false}},
		{"[,,]", []bool{true, true}},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		arr := e.(*ast.Array)
		if len(arr.Elems) != len(c.holes) {
			t.Errorf("%s: length %d, want %d", c.src, len(arr.Elems), len(c.holes))
			continue
		}
		for i, hole := range c.holes {
			if (arr.Elems[i] == nil) != hole {
				t.Errorf("%s: element %d hole=%v, want %v", c.src, i, arr.Elems[i] == nil, hole)
			}
		}
	}
}
