// Package parser parses the JavaScript subset defined in internal/ast.
//
// It is a hand-written recursive-descent parser with precedence climbing for
// binary operators, automatic semicolon insertion, and support for the ES6
// features Stopify relies on (arrow functions and new.target). let and const
// are accepted and normalized to var declarations: the code this repository
// compiles — compiler output and benchmark programs — does not depend on
// temporal-dead-zone semantics (see DESIGN.md §4).
package parser

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lexer"
)

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Parse parses a complete program.
func Parse(src string) (prog *ast.Program, err error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog = &ast.Program{Pos: ast.Pos{Line: 1, Col: 1}}
	defer p.recoverTo(&err)
	for !p.at(lexer.EOF, "") {
		prog.Body = append(prog.Body, p.statement())
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and the REPL).
func ParseExpr(src string) (expr ast.Expr, err error) {
	toks, lerr := lexer.Lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	defer p.recoverTo(&err)
	expr = p.expression(false)
	if !p.at(lexer.EOF, "") {
		return nil, p.errAtCur("unexpected trailing tokens")
	}
	return expr, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

// parseBail carries a parse error out of deep recursion via panic; the
// exported entry points recover it. This keeps the grammar functions free of
// error plumbing, the same pattern the standard library's regexp parser uses.
type parseBail struct{ err error }

func (p *parser) recoverTo(err *error) {
	if r := recover(); r != nil {
		bail, ok := r.(parseBail)
		if !ok {
			panic(r)
		}
		*err = bail.err
	}
}

func (p *parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *parser) prev() lexer.Token { return p.toks[p.pos-1] }

func (p *parser) peekAt(i int) lexer.Token {
	if p.pos+i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+i]
}

func (p *parser) at(kind lexer.Kind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) atPunct(text string) bool   { return p.at(lexer.Punct, text) }
func (p *parser) atKeyword(text string) bool { return p.at(lexer.Keyword, text) }

func (p *parser) advance() lexer.Token {
	t := p.cur()
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *parser) eat(kind lexer.Kind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind lexer.Kind, text string) lexer.Token {
	if !p.at(kind, text) {
		panic(parseBail{p.errAtCur("expected %q, found %q", text, p.cur().Text)})
	}
	return p.advance()
}

func (p *parser) errAtCur(format string, args ...any) error {
	t := p.cur()
	what := t.Text
	if t.Kind == lexer.EOF {
		what = "end of input"
	}
	msg := fmt.Sprintf(format, args...)
	return &Error{Line: t.Line, Col: t.Col, Msg: msg + " (at " + what + ")"}
}

func (p *parser) fail(format string, args ...any) {
	panic(parseBail{p.errAtCur(format, args...)})
}

func posOf(t lexer.Token) ast.Pos { return ast.Pos{Line: t.Line, Col: t.Col} }

// semicolon consumes a statement terminator, applying automatic semicolon
// insertion: an explicit `;`, a following `}`, end of input, or a line
// terminator after the previous token all terminate the statement.
func (p *parser) semicolon() {
	if p.eat(lexer.Punct, ";") {
		return
	}
	if p.atPunct("}") || p.at(lexer.EOF, "") {
		return
	}
	if p.pos > 0 && p.prev().NLAfter {
		return
	}
	p.fail("expected ';'")
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *parser) statement() ast.Stmt {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		return p.block()
	case p.atPunct(";"):
		p.advance()
		return &ast.Empty{P: posOf(t)}
	case p.atKeyword("var"), p.atKeyword("let"), p.atKeyword("const"):
		d := p.varDecl(false)
		p.semicolon()
		return d
	case p.atKeyword("function"):
		p.advance()
		fn := p.functionRest(posOf(t), false)
		if fn.Name == "" {
			p.fail("function declaration requires a name")
		}
		return &ast.FuncDecl{P: posOf(t), Fn: fn}
	case p.atKeyword("if"):
		return p.ifStmt()
	case p.atKeyword("while"):
		return p.whileStmt()
	case p.atKeyword("do"):
		return p.doWhileStmt()
	case p.atKeyword("for"):
		return p.forStmt()
	case p.atKeyword("return"):
		p.advance()
		ret := &ast.Return{P: posOf(t)}
		if !p.atPunct(";") && !p.atPunct("}") && !p.at(lexer.EOF, "") && !t.NLAfter {
			ret.Arg = p.expression(false)
		}
		p.semicolon()
		return ret
	case p.atKeyword("break"), p.atKeyword("continue"):
		p.advance()
		label := ""
		if p.at(lexer.Ident, "") && !t.NLAfter {
			label = p.advance().Text
		}
		p.semicolon()
		if t.Text == "break" {
			return &ast.Break{P: posOf(t), Label: label}
		}
		return &ast.Continue{P: posOf(t), Label: label}
	case p.atKeyword("switch"):
		return p.switchStmt()
	case p.atKeyword("throw"):
		p.advance()
		if t.NLAfter {
			p.fail("illegal newline after throw")
		}
		arg := p.expression(false)
		p.semicolon()
		return &ast.Throw{P: posOf(t), Arg: arg}
	case p.atKeyword("try"):
		return p.tryStmt()
	case t.Kind == lexer.Ident && p.peekAt(1).Kind == lexer.Punct && p.peekAt(1).Text == ":":
		p.advance()
		p.advance()
		return &ast.Labeled{P: posOf(t), Label: t.Text, Body: p.statement()}
	default:
		x := p.expression(false)
		p.semicolon()
		return &ast.ExprStmt{P: posOf(t), X: x}
	}
}

func (p *parser) block() *ast.Block {
	t := p.expect(lexer.Punct, "{")
	b := &ast.Block{P: posOf(t)}
	for !p.atPunct("}") && !p.at(lexer.EOF, "") {
		b.Body = append(b.Body, p.statement())
	}
	p.expect(lexer.Punct, "}")
	return b
}

func (p *parser) varDecl(noIn bool) *ast.VarDecl {
	t := p.advance() // var / let / const
	d := &ast.VarDecl{P: posOf(t)}
	for {
		name := p.identName()
		var init ast.Expr
		if p.eat(lexer.Punct, "=") {
			init = p.assignExpr(noIn)
		}
		d.Decls = append(d.Decls, ast.Declarator{Name: name, Init: init})
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	return d
}

func (p *parser) identName() string {
	if !p.at(lexer.Ident, "") {
		p.fail("expected identifier")
	}
	return p.advance().Text
}

func (p *parser) parenExpr() ast.Expr {
	p.expect(lexer.Punct, "(")
	x := p.expression(false)
	p.expect(lexer.Punct, ")")
	return x
}

func (p *parser) ifStmt() ast.Stmt {
	t := p.advance()
	test := p.parenExpr()
	cons := p.statement()
	var alt ast.Stmt
	if p.eat(lexer.Keyword, "else") {
		alt = p.statement()
	}
	return &ast.If{P: posOf(t), Test: test, Cons: cons, Alt: alt}
}

func (p *parser) whileStmt() ast.Stmt {
	t := p.advance()
	test := p.parenExpr()
	return &ast.While{P: posOf(t), Test: test, Body: p.statement()}
}

func (p *parser) doWhileStmt() ast.Stmt {
	t := p.advance()
	body := p.statement()
	p.expect(lexer.Keyword, "while")
	test := p.parenExpr()
	p.eat(lexer.Punct, ";")
	return &ast.DoWhile{P: posOf(t), Body: body, Test: test}
}

func (p *parser) forStmt() ast.Stmt {
	t := p.advance()
	p.expect(lexer.Punct, "(")
	var init ast.Stmt
	if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
		d := p.varDecl(true)
		if p.atKeyword("in") && len(d.Decls) == 1 && d.Decls[0].Init == nil {
			p.advance()
			obj := p.expression(false)
			p.expect(lexer.Punct, ")")
			return &ast.ForIn{P: posOf(t), Decl: true, Name: d.Decls[0].Name, Obj: obj, Body: p.statement()}
		}
		init = d
	} else if !p.atPunct(";") {
		x := p.expression(true)
		if p.atKeyword("in") {
			id, ok := x.(*ast.Ident)
			if !ok {
				p.fail("for-in target must be an identifier")
			}
			p.advance()
			obj := p.expression(false)
			p.expect(lexer.Punct, ")")
			return &ast.ForIn{P: posOf(t), Name: id.Name, Obj: obj, Body: p.statement()}
		}
		init = &ast.ExprStmt{P: x.Position(), X: x}
	}
	p.expect(lexer.Punct, ";")
	var test ast.Expr
	if !p.atPunct(";") {
		test = p.expression(false)
	}
	p.expect(lexer.Punct, ";")
	var update ast.Expr
	if !p.atPunct(")") {
		update = p.expression(false)
	}
	p.expect(lexer.Punct, ")")
	return &ast.For{P: posOf(t), Init: init, Test: test, Update: update, Body: p.statement()}
}

func (p *parser) switchStmt() ast.Stmt {
	t := p.advance()
	disc := p.parenExpr()
	p.expect(lexer.Punct, "{")
	sw := &ast.Switch{P: posOf(t), Disc: disc}
	sawDefault := false
	for !p.atPunct("}") && !p.at(lexer.EOF, "") {
		var c ast.Case
		if p.eat(lexer.Keyword, "case") {
			c.Test = p.expression(false)
		} else {
			p.expect(lexer.Keyword, "default")
			if sawDefault {
				p.fail("multiple default clauses")
			}
			sawDefault = true
		}
		p.expect(lexer.Punct, ":")
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") && !p.at(lexer.EOF, "") {
			c.Body = append(c.Body, p.statement())
		}
		sw.Cases = append(sw.Cases, c)
	}
	p.expect(lexer.Punct, "}")
	return sw
}

func (p *parser) tryStmt() ast.Stmt {
	t := p.advance()
	try := &ast.Try{P: posOf(t), Block: p.block()}
	if p.eat(lexer.Keyword, "catch") {
		p.expect(lexer.Punct, "(")
		try.CatchParam = p.identName()
		p.expect(lexer.Punct, ")")
		try.Catch = p.block()
	}
	if p.eat(lexer.Keyword, "finally") {
		try.Finally = p.block()
	}
	if try.Catch == nil && try.Finally == nil {
		p.fail("try requires catch or finally")
	}
	return try
}

// functionRest parses a function literal after the `function` keyword (or,
// for arrows, is not used — see arrowFunction).
func (p *parser) functionRest(pos ast.Pos, exprCtx bool) *ast.Func {
	fn := &ast.Func{P: pos}
	if p.at(lexer.Ident, "") {
		fn.Name = p.advance().Text
	}
	p.expect(lexer.Punct, "(")
	for !p.atPunct(")") {
		fn.Params = append(fn.Params, p.identName())
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	fn.Body = p.block().Body
	_ = exprCtx
	return fn
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func (p *parser) expression(noIn bool) ast.Expr {
	x := p.assignExpr(noIn)
	if !p.atPunct(",") {
		return x
	}
	seq := &ast.Seq{P: x.Position(), Exprs: []ast.Expr{x}}
	for p.eat(lexer.Punct, ",") {
		seq.Exprs = append(seq.Exprs, p.assignExpr(noIn))
	}
	return seq
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
	"**=": true,
}

func (p *parser) assignExpr(noIn bool) ast.Expr {
	if arrow := p.tryArrow(); arrow != nil {
		return arrow
	}
	left := p.condExpr(noIn)
	t := p.cur()
	if t.Kind == lexer.Punct && assignOps[t.Text] {
		switch left.(type) {
		case *ast.Ident, *ast.Member:
		default:
			p.fail("invalid assignment target")
		}
		p.advance()
		right := p.assignExpr(noIn)
		return &ast.Assign{P: left.Position(), Op: t.Text, Target: left, Value: right}
	}
	return left
}

// tryArrow detects and parses an arrow function at the current position.
// It returns nil (with no tokens consumed) if the lookahead does not find
// one.
func (p *parser) tryArrow() ast.Expr {
	t := p.cur()
	if t.Kind == lexer.Ident && p.peekAt(1).Kind == lexer.Punct && p.peekAt(1).Text == "=>" {
		p.advance()
		p.advance()
		return p.arrowBody(posOf(t), []string{t.Text})
	}
	if !p.atPunct("(") {
		return nil
	}
	// Scan ahead for `) =>` at the matching close paren.
	depth := 0
	i := p.pos
	for ; i < len(p.toks); i++ {
		tk := p.toks[i]
		if tk.Kind != lexer.Punct {
			continue
		}
		switch tk.Text {
		case "(", "[", "{":
			depth++
		case ")", "]", "}":
			depth--
			if depth == 0 && tk.Text == ")" {
				if i+1 < len(p.toks) && p.toks[i+1].Kind == lexer.Punct && p.toks[i+1].Text == "=>" {
					goto isArrow
				}
				return nil
			}
		}
	}
	return nil
isArrow:
	p.advance() // (
	var params []string
	for !p.atPunct(")") {
		params = append(params, p.identName())
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	p.expect(lexer.Punct, "=>")
	return p.arrowBody(posOf(t), params)
}

func (p *parser) arrowBody(pos ast.Pos, params []string) ast.Expr {
	fn := &ast.Func{P: pos, Params: params, Arrow: true}
	if p.atPunct("{") {
		fn.Body = p.block().Body
	} else {
		arg := p.assignExpr(false)
		fn.Body = []ast.Stmt{&ast.Return{P: arg.Position(), Arg: arg}}
	}
	return fn
}

func (p *parser) condExpr(noIn bool) ast.Expr {
	test := p.binaryExpr(0, noIn)
	if !p.eat(lexer.Punct, "?") {
		return test
	}
	cons := p.assignExpr(false)
	p.expect(lexer.Punct, ":")
	alt := p.assignExpr(noIn)
	return &ast.Cond{P: test.Position(), Test: test, Cons: cons, Alt: alt}
}

// binary operator precedence; logical operators are lowest.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7, "in": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
	"**": 11,
}

func (p *parser) binaryExpr(minPrec int, noIn bool) ast.Expr {
	left := p.unaryExpr()
	for {
		t := p.cur()
		op := t.Text
		if t.Kind != lexer.Punct && !(t.Kind == lexer.Keyword && (op == "instanceof" || op == "in")) {
			return left
		}
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left
		}
		if op == "in" && noIn {
			return left
		}
		p.advance()
		next := prec + 1
		if op == "**" { // right-associative
			next = prec
		}
		right := p.binaryExpr(next, noIn)
		if op == "&&" || op == "||" {
			left = &ast.Logical{P: left.Position(), Op: op, L: left, R: right}
		} else {
			left = &ast.Binary{P: left.Position(), Op: op, L: left, R: right}
		}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	t := p.cur()
	switch {
	case p.atPunct("!") || p.atPunct("~") || p.atPunct("+") || p.atPunct("-") ||
		p.atKeyword("typeof") || p.atKeyword("void") || p.atKeyword("delete"):
		p.advance()
		return &ast.Unary{P: posOf(t), Op: t.Text, X: p.unaryExpr()}
	case p.atPunct("++") || p.atPunct("--"):
		p.advance()
		x := p.unaryExpr()
		p.checkUpdateTarget(x)
		return &ast.Update{P: posOf(t), Op: t.Text, Prefix: true, X: x}
	}
	x := p.postfixExpr()
	return x
}

func (p *parser) checkUpdateTarget(x ast.Expr) {
	switch x.(type) {
	case *ast.Ident, *ast.Member:
	default:
		p.fail("invalid increment/decrement target")
	}
}

func (p *parser) postfixExpr() ast.Expr {
	x := p.callExpr()
	t := p.cur()
	if (p.atPunct("++") || p.atPunct("--")) && !p.prev().NLAfter {
		p.advance()
		p.checkUpdateTarget(x)
		return &ast.Update{P: x.Position(), Op: t.Text, Prefix: false, X: x}
	}
	return x
}

// callExpr parses member accesses, calls, and new-expressions.
func (p *parser) callExpr() ast.Expr {
	var x ast.Expr
	if p.atKeyword("new") {
		x = p.newExpr()
	} else {
		x = p.primaryExpr()
	}
	for {
		switch {
		case p.atPunct("."):
			p.advance()
			x = &ast.Member{P: x.Position(), X: x, Name: p.propertyName()}
		case p.atPunct("["):
			p.advance()
			idx := p.expression(false)
			p.expect(lexer.Punct, "]")
			x = &ast.Member{P: x.Position(), X: x, Index: idx, Computed: true}
		case p.atPunct("("):
			x = &ast.Call{P: x.Position(), Callee: x, Args: p.arguments()}
		default:
			return x
		}
	}
}

// newExpr parses `new expr(args)` and `new.target`.
func (p *parser) newExpr() ast.Expr {
	t := p.advance() // new
	if p.eat(lexer.Punct, ".") {
		name := p.propertyName()
		if name != "target" {
			p.fail("unknown meta-property new.%s", name)
		}
		return &ast.NewTarget{P: posOf(t)}
	}
	var callee ast.Expr
	if p.atKeyword("new") {
		callee = p.newExpr()
	} else {
		callee = p.primaryExpr()
	}
	// Member accesses bind tighter than the new's argument list.
	for {
		switch {
		case p.atPunct("."):
			p.advance()
			callee = &ast.Member{P: callee.Position(), X: callee, Name: p.propertyName()}
		case p.atPunct("["):
			p.advance()
			idx := p.expression(false)
			p.expect(lexer.Punct, "]")
			callee = &ast.Member{P: callee.Position(), X: callee, Index: idx, Computed: true}
		default:
			var args []ast.Expr
			if p.atPunct("(") {
				args = p.arguments()
			}
			return &ast.New{P: posOf(t), Callee: callee, Args: args}
		}
	}
}

// propertyName accepts identifiers and keywords after a dot.
func (p *parser) propertyName() string {
	t := p.cur()
	if t.Kind == lexer.Ident || t.Kind == lexer.Keyword {
		p.advance()
		return t.Text
	}
	p.fail("expected property name")
	return ""
}

func (p *parser) arguments() []ast.Expr {
	p.expect(lexer.Punct, "(")
	var args []ast.Expr
	for !p.atPunct(")") {
		args = append(args, p.assignExpr(false))
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, ")")
	return args
}

func (p *parser) primaryExpr() ast.Expr {
	t := p.cur()
	switch {
	case t.Kind == lexer.Number:
		p.advance()
		return &ast.Number{P: posOf(t), Value: t.Num}
	case t.Kind == lexer.String:
		p.advance()
		return &ast.Str{P: posOf(t), Value: t.Str}
	case t.Kind == lexer.Ident:
		p.advance()
		return &ast.Ident{P: posOf(t), Name: t.Text}
	case p.atKeyword("true"), p.atKeyword("false"):
		p.advance()
		return &ast.Bool{P: posOf(t), Value: t.Text == "true"}
	case p.atKeyword("null"):
		p.advance()
		return &ast.Null{P: posOf(t)}
	case p.atKeyword("this"):
		p.advance()
		return &ast.This{P: posOf(t)}
	case p.atKeyword("function"):
		p.advance()
		return p.functionRest(posOf(t), true)
	case p.atPunct("("):
		p.advance()
		x := p.expression(false)
		p.expect(lexer.Punct, ")")
		return x
	case p.atPunct("["):
		return p.arrayLiteral()
	case p.atPunct("{"):
		return p.objectLiteral()
	}
	p.fail("unexpected token")
	return nil
}

func (p *parser) arrayLiteral() ast.Expr {
	t := p.expect(lexer.Punct, "[")
	arr := &ast.Array{P: posOf(t)}
	for !p.atPunct("]") {
		// Elision: a comma where an element would start contributes a hole
		// (nil Expr). A single comma after the last element is the usual
		// trailing comma and adds nothing, which this loop structure gets
		// right: `[1,,]` parses the 1, eats its separator, then sees one
		// more comma before `]` — one hole, length 2.
		if p.atPunct(",") {
			p.eat(lexer.Punct, ",")
			arr.Elems = append(arr.Elems, nil)
			continue
		}
		arr.Elems = append(arr.Elems, p.assignExpr(false))
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, "]")
	return arr
}

func (p *parser) objectLiteral() ast.Expr {
	t := p.expect(lexer.Punct, "{")
	obj := &ast.Object{P: posOf(t)}
	for !p.atPunct("}") {
		obj.Props = append(obj.Props, p.objectProperty())
		if !p.eat(lexer.Punct, ",") {
			break
		}
	}
	p.expect(lexer.Punct, "}")
	return obj
}

func (p *parser) objectProperty() ast.Property {
	t := p.cur()
	// Accessor: `get name() {}` / `set name(v) {}` — but `get: expr` is a
	// plain property named "get".
	if t.Kind == lexer.Ident && (t.Text == "get" || t.Text == "set") {
		next := p.peekAt(1)
		if next.Kind == lexer.Ident || next.Kind == lexer.Keyword ||
			next.Kind == lexer.String || next.Kind == lexer.Number {
			p.advance()
			key := p.propertyKey()
			fn := &ast.Func{P: posOf(t)}
			p.expect(lexer.Punct, "(")
			for !p.atPunct(")") {
				fn.Params = append(fn.Params, p.identName())
				if !p.eat(lexer.Punct, ",") {
					break
				}
			}
			p.expect(lexer.Punct, ")")
			fn.Body = p.block().Body
			kind := ast.PropGet
			if t.Text == "set" {
				kind = ast.PropSet
			}
			return ast.Property{Kind: kind, Key: key, Value: fn}
		}
	}
	key := p.propertyKey()
	p.expect(lexer.Punct, ":")
	return ast.Property{Kind: ast.PropInit, Key: key, Value: p.assignExpr(false)}
}

func (p *parser) propertyKey() string {
	t := p.cur()
	switch t.Kind {
	case lexer.Ident, lexer.Keyword:
		p.advance()
		return t.Text
	case lexer.String:
		p.advance()
		return t.Str
	case lexer.Number:
		p.advance()
		return numToPropKey(t.Num)
	}
	p.fail("expected property key")
	return ""
}

func numToPropKey(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
