// Package printer renders an AST back to JavaScript source. The output is
// precedence-correct (it round-trips through the parser) and lightly
// indented so that instrumented programs remain inspectable — useful when
// debugging the Stopify transformations and for the code-size experiment
// (§6.1 of the paper).
package printer

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/ast"
)

// Print renders a whole program.
func Print(p *ast.Program) string {
	pr := &printer{}
	for _, s := range p.Body {
		pr.stmt(s)
	}
	return pr.b.String()
}

// PrintStmt renders a single statement.
func PrintStmt(s ast.Stmt) string {
	pr := &printer{}
	pr.stmt(s)
	return pr.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e ast.Expr) string {
	pr := &printer{}
	pr.expr(e, 0)
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("  ")
	}
}

func (p *printer) line(s string) {
	p.ws()
	p.b.WriteString(s)
	p.b.WriteByte('\n')
}

// Expression precedence levels; a child is parenthesized when its level is
// below what its context requires.
const (
	precSeq = iota + 1
	precAssign
	precCond
	precOr
	precAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precExp
	precUnary
	precPostfix
	precCall
	precPrimary
)

var binLevel = map[string]int{
	"|": precBitOr, "^": precBitXor, "&": precBitAnd,
	"==": precEq, "!=": precEq, "===": precEq, "!==": precEq,
	"<": precRel, ">": precRel, "<=": precRel, ">=": precRel,
	"instanceof": precRel, "in": precRel,
	"<<": precShift, ">>": precShift, ">>>": precShift,
	"+": precAdd, "-": precAdd,
	"*": precMul, "/": precMul, "%": precMul,
	"**": precExp,
}

func level(e ast.Expr) int {
	switch n := e.(type) {
	case *ast.Seq:
		return precSeq
	case *ast.Assign:
		return precAssign
	case *ast.Cond:
		return precCond
	case *ast.Logical:
		if n.Op == "||" {
			return precOr
		}
		return precAnd
	case *ast.Binary:
		return binLevel[n.Op]
	case *ast.Unary:
		return precUnary
	case *ast.Update:
		if n.Prefix {
			return precUnary
		}
		return precPostfix
	case *ast.Call, *ast.New, *ast.Member:
		return precCall
	case *ast.Func:
		// Function expressions parse at primary level but are fragile in
		// several positions; give them assignment level so they are wrapped
		// when used as operands.
		return precAssign
	case *ast.Number:
		if n.Value < 0 || math.Signbit(n.Value) {
			return precUnary
		}
		return precPrimary
	default:
		return precPrimary
	}
}

func (p *printer) expr(e ast.Expr, min int) {
	lv := level(e)
	if lv < min {
		p.b.WriteByte('(')
		p.exprRaw(e)
		p.b.WriteByte(')')
		return
	}
	p.exprRaw(e)
}

func (p *printer) exprRaw(e ast.Expr) {
	switch n := e.(type) {
	case *ast.Ident:
		p.b.WriteString(n.Name)
	case *ast.Number:
		p.b.WriteString(FormatNumber(n.Value))
	case *ast.Str:
		p.b.WriteString(Quote(n.Value))
	case *ast.Bool:
		if n.Value {
			p.b.WriteString("true")
		} else {
			p.b.WriteString("false")
		}
	case *ast.Null:
		p.b.WriteString("null")
	case *ast.This:
		p.b.WriteString("this")
	case *ast.NewTarget:
		p.b.WriteString("new.target")
	case *ast.Array:
		p.b.WriteByte('[')
		for i, el := range n.Elems {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if el == nil {
				continue // elision: the separators alone encode the hole
			}
			p.expr(el, precAssign)
		}
		// A trailing hole needs one more comma: `[1, ]` would re-parse at
		// length 1, `[1, , ]` at length 2.
		if len(n.Elems) > 0 && n.Elems[len(n.Elems)-1] == nil {
			p.b.WriteString(", ")
		}
		p.b.WriteByte(']')
	case *ast.Object:
		p.b.WriteString("{ ")
		for i, prop := range n.Props {
			if i > 0 {
				p.b.WriteString(", ")
			}
			switch prop.Kind {
			case ast.PropInit:
				p.b.WriteString(propKey(prop.Key))
				p.b.WriteString(": ")
				p.expr(prop.Value, precAssign)
			case ast.PropGet, ast.PropSet:
				if prop.Kind == ast.PropGet {
					p.b.WriteString("get ")
				} else {
					p.b.WriteString("set ")
				}
				p.b.WriteString(propKey(prop.Key))
				fn := prop.Value.(*ast.Func)
				p.paramsAndBody(fn)
			}
		}
		p.b.WriteString(" }")
	case *ast.Func:
		if n.Arrow {
			p.b.WriteByte('(')
			for i, param := range n.Params {
				if i > 0 {
					p.b.WriteString(", ")
				}
				p.b.WriteString(param)
			}
			p.b.WriteString(") => ")
			p.funcBody(n.Body)
			return
		}
		p.b.WriteString("function")
		if n.Name != "" {
			p.b.WriteByte(' ')
			p.b.WriteString(n.Name)
		}
		p.paramsAndBody(n)
	case *ast.Unary:
		p.b.WriteString(n.Op)
		if n.Op == "typeof" || n.Op == "void" || n.Op == "delete" {
			p.b.WriteByte(' ')
		} else if u, ok := n.X.(*ast.Unary); ok && (u.Op == n.Op || (n.Op == "+" && u.Op == "++") || (n.Op == "-" && u.Op == "--")) {
			p.b.WriteByte(' ') // avoid `--x` from -(-x)
		} else if num, ok := n.X.(*ast.Number); ok && n.Op == "-" && num.Value >= 0 {
			// fine: -5
		}
		p.expr(n.X, precUnary)
	case *ast.Update:
		if n.Prefix {
			p.b.WriteString(n.Op)
			p.expr(n.X, precUnary)
		} else {
			p.expr(n.X, precPostfix)
			p.b.WriteString(n.Op)
		}
	case *ast.Binary:
		lv := binLevel[n.Op]
		rightMin := lv + 1
		leftMin := lv
		if n.Op == "**" { // right-associative
			leftMin, rightMin = lv+1, lv
		}
		p.expr(n.L, leftMin)
		p.b.WriteByte(' ')
		p.b.WriteString(n.Op)
		p.b.WriteByte(' ')
		p.expr(n.R, rightMin)
	case *ast.Logical:
		lv := level(n)
		p.expr(n.L, lv)
		p.b.WriteByte(' ')
		p.b.WriteString(n.Op)
		p.b.WriteByte(' ')
		p.expr(n.R, lv+1)
	case *ast.Assign:
		p.expr(n.Target, precCall)
		p.b.WriteByte(' ')
		p.b.WriteString(n.Op)
		p.b.WriteByte(' ')
		p.expr(n.Value, precAssign)
	case *ast.Cond:
		p.expr(n.Test, precCond+1)
		p.b.WriteString(" ? ")
		p.expr(n.Cons, precAssign)
		p.b.WriteString(" : ")
		p.expr(n.Alt, precAssign)
	case *ast.Call:
		p.expr(n.Callee, precCall)
		p.args(n.Args)
	case *ast.New:
		p.b.WriteString("new ")
		p.newCallee(n.Callee)
		p.args(n.Args)
	case *ast.Member:
		p.memberBase(n.X)
		if n.Computed {
			p.b.WriteByte('[')
			p.expr(n.Index, precSeq)
			p.b.WriteByte(']')
		} else {
			p.b.WriteByte('.')
			p.b.WriteString(n.Name)
		}
	case *ast.Seq:
		for i, x := range n.Exprs {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(x, precAssign)
		}
	default:
		panic("printer: unknown expression")
	}
}

// memberBase prints the receiver of a member access, parenthesizing the
// cases that would mis-parse: numbers (1.x), new without args, functions.
func (p *printer) memberBase(x ast.Expr) {
	if num, ok := x.(*ast.Number); ok && num.Value >= 0 {
		p.b.WriteByte('(')
		p.exprRaw(x)
		p.b.WriteByte(')')
		return
	}
	p.expr(x, precCall)
}

// newCallee prints the constructor of a new-expression; calls inside must be
// parenthesized so the argument list attaches to the `new`.
func (p *printer) newCallee(x ast.Expr) {
	if containsCall(x) {
		p.b.WriteByte('(')
		p.exprRaw(x)
		p.b.WriteByte(')')
		return
	}
	p.expr(x, precCall)
}

func containsCall(x ast.Expr) bool {
	switch n := x.(type) {
	case *ast.Call:
		return true
	case *ast.Member:
		return containsCall(n.X)
	case *ast.Ident, *ast.This:
		return false
	}
	return true
}

func (p *printer) args(args []ast.Expr) {
	p.b.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.expr(a, precAssign)
	}
	p.b.WriteByte(')')
}

func (p *printer) paramsAndBody(fn *ast.Func) {
	p.b.WriteByte('(')
	for i, param := range fn.Params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(param)
	}
	p.b.WriteString(") ")
	p.funcBody(fn.Body)
}

func (p *printer) funcBody(body []ast.Stmt) {
	p.b.WriteString("{\n")
	p.indent++
	for _, s := range body {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.b.WriteByte('}')
}

func (p *printer) stmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.VarDecl:
		p.ws()
		p.b.WriteString("var ")
		for i, d := range n.Decls {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(d.Name)
			if d.Init != nil {
				p.b.WriteString(" = ")
				p.expr(d.Init, precAssign)
			}
		}
		p.b.WriteString(";\n")
	case *ast.ExprStmt:
		p.ws()
		if needsParensAsStmt(n.X) {
			p.b.WriteByte('(')
			p.exprRaw(n.X)
			p.b.WriteByte(')')
		} else {
			p.expr(n.X, 0)
		}
		p.b.WriteString(";\n")
	case *ast.Block:
		p.ws()
		p.b.WriteString("{\n")
		p.indent++
		for _, st := range n.Body {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *ast.If:
		p.ws()
		p.ifChain(n)
		p.b.WriteByte('\n')
	case *ast.While:
		p.ws()
		p.b.WriteString("while (")
		p.expr(n.Test, 0)
		p.b.WriteString(") ")
		p.nested(n.Body)
		p.b.WriteByte('\n')
	case *ast.DoWhile:
		p.ws()
		p.b.WriteString("do ")
		p.nested(n.Body)
		p.b.WriteString(" while (")
		p.expr(n.Test, 0)
		p.b.WriteString(");\n")
	case *ast.For:
		p.ws()
		p.b.WriteString("for (")
		switch init := n.Init.(type) {
		case nil:
		case *ast.VarDecl:
			p.b.WriteString("var ")
			for i, d := range init.Decls {
				if i > 0 {
					p.b.WriteString(", ")
				}
				p.b.WriteString(d.Name)
				if d.Init != nil {
					p.b.WriteString(" = ")
					p.expr(d.Init, precAssign)
				}
			}
		case *ast.ExprStmt:
			p.expr(init.X, 0)
		}
		p.b.WriteString("; ")
		if n.Test != nil {
			p.expr(n.Test, 0)
		}
		p.b.WriteString("; ")
		if n.Update != nil {
			p.expr(n.Update, 0)
		}
		p.b.WriteString(") ")
		p.nested(n.Body)
		p.b.WriteByte('\n')
	case *ast.ForIn:
		p.ws()
		p.b.WriteString("for (")
		if n.Decl {
			p.b.WriteString("var ")
		}
		p.b.WriteString(n.Name)
		p.b.WriteString(" in ")
		p.expr(n.Obj, 0)
		p.b.WriteString(") ")
		p.nested(n.Body)
		p.b.WriteByte('\n')
	case *ast.Return:
		p.ws()
		if n.Arg == nil {
			p.b.WriteString("return;\n")
		} else {
			p.b.WriteString("return ")
			p.expr(n.Arg, 0)
			p.b.WriteString(";\n")
		}
	case *ast.Break:
		if n.Label != "" {
			p.line("break " + n.Label + ";")
		} else {
			p.line("break;")
		}
	case *ast.Continue:
		if n.Label != "" {
			p.line("continue " + n.Label + ";")
		} else {
			p.line("continue;")
		}
	case *ast.Labeled:
		p.ws()
		p.b.WriteString(n.Label)
		p.b.WriteString(": ")
		p.nested(n.Body)
		p.b.WriteByte('\n')
	case *ast.Switch:
		p.ws()
		p.b.WriteString("switch (")
		p.expr(n.Disc, 0)
		p.b.WriteString(") {\n")
		p.indent++
		for _, c := range n.Cases {
			p.ws()
			if c.Test == nil {
				p.b.WriteString("default:\n")
			} else {
				p.b.WriteString("case ")
				p.expr(c.Test, 0)
				p.b.WriteString(":\n")
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.indent--
		p.line("}")
	case *ast.Throw:
		p.ws()
		p.b.WriteString("throw ")
		p.expr(n.Arg, 0)
		p.b.WriteString(";\n")
	case *ast.Try:
		p.ws()
		p.b.WriteString("try ")
		p.blockInline(n.Block)
		if n.Catch != nil {
			p.b.WriteString(" catch (")
			p.b.WriteString(n.CatchParam)
			p.b.WriteString(") ")
			p.blockInline(n.Catch)
		}
		if n.Finally != nil {
			p.b.WriteString(" finally ")
			p.blockInline(n.Finally)
		}
		p.b.WriteByte('\n')
	case *ast.FuncDecl:
		p.ws()
		p.b.WriteString("function ")
		p.b.WriteString(n.Fn.Name)
		p.paramsAndBody(n.Fn)
		p.b.WriteByte('\n')
	case *ast.Empty:
		p.line(";")
	default:
		panic("printer: unknown statement")
	}
}

// ifChain prints if/else-if/else without re-indenting at each else-if.
func (p *printer) ifChain(n *ast.If) {
	p.b.WriteString("if (")
	p.expr(n.Test, 0)
	p.b.WriteString(") ")
	// Guard against dangling-else: if the consequent is an if without an
	// else, wrap it in a block.
	cons := n.Cons
	if inner, ok := cons.(*ast.If); ok && inner.Alt == nil && n.Alt != nil {
		cons = &ast.Block{Body: []ast.Stmt{cons}}
	}
	p.nested(cons)
	if n.Alt == nil {
		return
	}
	p.b.WriteString(" else ")
	if alt, ok := n.Alt.(*ast.If); ok {
		p.ifChain(alt)
		return
	}
	p.nested(n.Alt)
}

// nested prints a statement used as a loop/if body on the current line.
func (p *printer) nested(s ast.Stmt) {
	if b, ok := s.(*ast.Block); ok {
		p.blockInline(b)
		return
	}
	p.b.WriteString("{\n")
	p.indent++
	p.stmt(s)
	p.indent--
	p.ws()
	p.b.WriteByte('}')
}

func (p *printer) blockInline(b *ast.Block) {
	p.b.WriteString("{\n")
	p.indent++
	for _, s := range b.Body {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.b.WriteByte('}')
}

// needsParensAsStmt reports whether the expression's first token would be
// `function` or `{`, which a statement position would mis-parse; the check
// follows every grammar position that can begin an expression.
func needsParensAsStmt(x ast.Expr) bool {
	switch n := x.(type) {
	case *ast.Func, *ast.Object:
		return true
	case *ast.Call:
		return needsParensAsStmt(n.Callee)
	case *ast.Member:
		return needsParensAsStmt(n.X)
	case *ast.Assign:
		return needsParensAsStmt(n.Target)
	case *ast.Binary:
		return needsParensAsStmt(n.L)
	case *ast.Logical:
		return needsParensAsStmt(n.L)
	case *ast.Cond:
		return needsParensAsStmt(n.Test)
	case *ast.Update:
		return !n.Prefix && needsParensAsStmt(n.X)
	case *ast.Seq:
		return len(n.Exprs) > 0 && needsParensAsStmt(n.Exprs[0])
	}
	return false
}

// propKey renders an object-literal key, quoting it unless it is a valid
// identifier.
func propKey(key string) string {
	if key == "" {
		return `""`
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		ok := c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return Quote(key)
		}
	}
	return key
}

// FormatNumber renders a float64 the way JavaScript's ToString does for the
// values this repository produces (finite doubles, NaN, infinities).
// smallIntStrings interns the decimal strings of small integers, the
// workhorse results of number-to-string coercion (array keys, counters in
// console output).
var smallIntStrings = func() [1024]string {
	var t [1024]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

func FormatNumber(v float64) string {
	switch {
	case v == 0:
		// Both zeros stringify to "0" (ES5 §9.8.1): String(-0) is "0", and
		// o[-0] must read the same property as o[0].
		return "0"
	case v == math.Trunc(v) && v > 0 && v < float64(len(smallIntStrings)):
		return smallIntStrings[int(v)]
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "Infinity"
	case math.IsInf(v, -1):
		return "-Infinity"
	case v == math.Trunc(v) && math.Abs(v) < 1e21:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		s := strconv.FormatFloat(v, 'g', -1, 64)
		return strings.Replace(s, "e+0", "e+", 1)
	}
}

// Quote renders a string literal with JavaScript escaping.
func Quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				b.WriteString("\\x")
				const hex = "0123456789abcdef"
				b.WriteByte(hex[r>>4])
				b.WriteByte(hex[r&0xf])
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
