package printer

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// TestPrintParsePrintFixpointRandom generates random expression trees and
// checks the printer's core contract — print(parse(print(e))) == print(e) —
// which exercises precedence and parenthesization decisions far beyond the
// hand-written cases.
func TestPrintParsePrintFixpointRandom(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		e := randomExpr(rnd, 5)
		out1 := PrintExpr(e)
		re, err := parser.ParseExpr(out1)
		if err != nil {
			t.Fatalf("seed %d: printed expression does not parse: %v\n%s", seed, err, out1)
		}
		out2 := PrintExpr(re)
		if out1 != out2 {
			t.Fatalf("seed %d: not a fixpoint:\nfirst:  %s\nsecond: %s", seed, out1, out2)
		}
	}
}

func TestPrintParsePrintFixpointRandomStmts(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for seed := 0; seed < iters; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed + 10000)))
		prog := &ast.Program{}
		for i := 0; i < 1+rnd.Intn(5); i++ {
			prog.Body = append(prog.Body, randomStmt(rnd, 3))
		}
		out1 := Print(prog)
		re, err := parser.Parse(out1)
		if err != nil {
			t.Fatalf("seed %d: printed program does not parse: %v\n%s", seed, err, out1)
		}
		out2 := Print(re)
		if out1 != out2 {
			t.Fatalf("seed %d: not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", seed, out1, out2)
		}
	}
}

var identPool = []string{"a", "b", "c", "obj", "fn", "x1"}
var binOps = []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "===", "!=", "!==", "&", "|", "^", "<<", ">>", ">>>", "instanceof", "in"}
var unOps = []string{"!", "-", "+", "~", "typeof", "void"}

func randomExpr(rnd *rand.Rand, depth int) ast.Expr {
	if depth <= 0 {
		switch rnd.Intn(5) {
		case 0:
			return ast.Int(rnd.Intn(100))
		case 1:
			return ast.Num(rnd.Float64() * 10)
		case 2:
			return ast.Strlit("s" + string(rune('a'+rnd.Intn(26))))
		case 3:
			return ast.Boollit(rnd.Intn(2) == 0)
		default:
			return ast.Id(identPool[rnd.Intn(len(identPool))])
		}
	}
	sub := func() ast.Expr { return randomExpr(rnd, depth-1) }
	switch rnd.Intn(12) {
	case 0:
		return ast.Bin(binOps[rnd.Intn(len(binOps))], sub(), sub())
	case 1:
		return ast.Log([]string{"&&", "||"}[rnd.Intn(2)], sub(), sub())
	case 2:
		return &ast.Unary{Op: unOps[rnd.Intn(len(unOps))], X: sub()}
	case 3:
		return &ast.Cond{Test: sub(), Cons: sub(), Alt: sub()}
	case 4:
		return ast.CallN(ast.Id(identPool[rnd.Intn(len(identPool))]), sub())
	case 5:
		return ast.Dot(ast.Id(identPool[rnd.Intn(len(identPool))]), "p")
	case 6:
		return ast.Idx(ast.Id("obj"), sub())
	case 7:
		return &ast.Array{Elems: []ast.Expr{sub(), sub()}}
	case 8:
		return &ast.Object{Props: []ast.Property{{Kind: ast.PropInit, Key: "k", Value: sub()}}}
	case 9:
		return &ast.Assign{Op: "=", Target: ast.Id(identPool[rnd.Intn(len(identPool))]), Value: sub()}
	case 10:
		return ast.NewN(ast.Id("Ctor"), sub())
	default:
		return &ast.Seq{Exprs: []ast.Expr{sub(), sub()}}
	}
}

func randomStmt(rnd *rand.Rand, depth int) ast.Stmt {
	if depth <= 0 {
		return ast.ExprOf(&ast.Assign{Op: "=", Target: ast.Id("a"), Value: randomExpr(rnd, 1)})
	}
	sub := func() ast.Stmt { return randomStmt(rnd, depth-1) }
	switch rnd.Intn(8) {
	case 0:
		return ast.Var("v"+string(rune('a'+rnd.Intn(26))), randomExpr(rnd, 2))
	case 1:
		return &ast.If{Test: randomExpr(rnd, 2), Cons: sub(), Alt: sub()}
	case 2:
		return &ast.If{Test: randomExpr(rnd, 2), Cons: sub()}
	case 3:
		return &ast.While{Test: randomExpr(rnd, 2), Body: sub()}
	case 4:
		return ast.BlockOf(sub(), sub())
	case 5:
		return &ast.FuncDecl{Fn: &ast.Func{Name: "g", Params: []string{"p"}, Body: []ast.Stmt{ast.Ret(randomExpr(rnd, 2))}}}
	case 6:
		return &ast.Try{Block: ast.BlockOf(sub()), CatchParam: "e", Catch: ast.BlockOf(sub())}
	default:
		return ast.ExprOf(randomExpr(rnd, 2))
	}
}
