package printer

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// roundTrip parses src, prints it, reparses, reprints, and requires the two
// printed forms to be identical — the printer's core contract.
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse 1 (%q): %v", src, err)
	}
	out1 := Print(p1)
	p2, err := parser.Parse(out1)
	if err != nil {
		t.Fatalf("reparse failed for output:\n%s\nerror: %v", out1, err)
	}
	out2 := Print(p2)
	if out1 != out2 {
		t.Fatalf("print/parse/print not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	return out1
}

func TestRoundTripStatements(t *testing.T) {
	sources := []string{
		"var x = 1, y = 2;",
		"if (a) b(); else c();",
		"if (a) { if (b) c(); } else d();",
		"while (x < 10) { x++; }",
		"do { x--; } while (x);",
		"for (var i = 0; i < n; i++) { sum += i; }",
		"for (;;) { break; }",
		"for (var k in o) { f(k); }",
		"L: while (true) { break L; }",
		"switch (x) { case 1: a(); break; default: b(); }",
		"try { f(); } catch (e) { g(e); } finally { h(); }",
		"throw new Error('bad');",
		"function f(a, b) { return a + b; }",
		"var f = function (x) { return x; };",
		"var g = (a, b) => a * b;",
		"var o = { a: 1, get b() { return 2; }, set b(v) { this.x = v; } };",
		"var a = [1, 2, [3, 4]];",
	}
	for _, src := range sources {
		roundTrip(t, src)
	}
}

func TestRoundTripExpressions(t *testing.T) {
	sources := []string{
		"x = 1 + 2 * 3 - 4 / 5 % 6;",
		"x = (1 + 2) * 3;",
		"x = a || b && c;",
		"x = (a || b) && c;",
		"x = a | b ^ c & d;",
		"x = (a | b) & c;",
		"x = a === b ? c : d;",
		"x = -(-y);",
		"x = -5;",
		"x = typeof a;",
		"x = void 0;",
		"x = delete o.p;",
		"x = a instanceof B;",
		"x = 'k' in o;",
		"x = a << 2 >>> 1;",
		"x = ++a + b++;",
		"x = a.b.c[d].e;",
		"x = f(g(h(1)));",
		"x = new F(1, 2).m();",
		"x = new (f())(3);",
		"x = (1).toString();",
		"x = 2 ** 3 ** 2;",
		"x = (2 ** 3) ** 2;",
		"x = (a, b, c);",
		"x = a + (b, c);",
		"f(function () { return 1; });",
		"x = '\\n\\t\"quotes\"';",
	}
	for _, src := range sources {
		roundTrip(t, src)
	}
}

func TestExprStmtParenthesization(t *testing.T) {
	// An object literal or function expression in statement position must be
	// parenthesized to survive reparsing.
	prog := &ast.Program{Body: []ast.Stmt{
		ast.ExprOf(&ast.Object{Props: []ast.Property{{Kind: ast.PropInit, Key: "a", Value: ast.Int(1)}}}),
		ast.ExprOf(ast.Fn([]string{"x"}, ast.Ret(ast.Id("x")))),
	}}
	out := Print(prog)
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("statement-position literal must reparse:\n%s\nerror: %v", out, err)
	}
}

func TestDanglingElse(t *testing.T) {
	// if (a) { if (b) c() } else d() — printing must not attach else to the
	// inner if.
	inner := &ast.If{Test: ast.Id("b"), Cons: ast.ExprOf(ast.CallId("c"))}
	outer := &ast.If{Test: ast.Id("a"), Cons: inner, Alt: ast.ExprOf(ast.CallId("d"))}
	out := PrintStmt(outer)
	p, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	reIf := p.Body[0].(*ast.If)
	if reIf.Alt == nil {
		t.Fatalf("else clause lost:\n%s", out)
	}
}

func TestFormatNumber(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {1, "1"}, {-1, "-1"}, {3.5, "3.5"},
		{1e21, "1e+21"}, {0.001, "0.001"}, {1234567890, "1234567890"},
	}
	for _, c := range cases {
		if got := FormatNumber(c.v); got != c.want {
			t.Errorf("FormatNumber(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestQuote(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc", `"abc"`},
		{"a\"b", `"a\"b"`},
		{"a\nb", `"a\nb"`},
		{"a\\b", `"a\\b"`},
		{"\x01", `"\x01"`},
	}
	for _, c := range cases {
		if got := Quote(c.in); got != c.want {
			t.Errorf("Quote(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestNegativeNumberMember(t *testing.T) {
	// (-5).toString() must not print as -5.toString().
	m := ast.CallN(ast.Dot(ast.Num(-5), "toString"))
	out := PrintExpr(m)
	if _, err := parser.ParseExpr(out); err != nil {
		t.Fatalf("negative receiver must reparse: %s (%v)", out, err)
	}
}

func TestElisionRoundTrip(t *testing.T) {
	// A printed elision must re-parse to the same element count: a
	// trailing hole needs its extra comma (`[1, , ]`, not `[1, ]`).
	for _, src := range []string{"x = [,1]", "x = [1,,3]", "x = [1,,]", "x = [,]", "x = [,,]"} {
		p1, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		printed := Print(p1)
		p2, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("%s → %q: %v", src, printed, err)
		}
		arr1 := p1.Body[0].(*ast.ExprStmt).X.(*ast.Assign).Value.(*ast.Array)
		arr2 := p2.Body[0].(*ast.ExprStmt).X.(*ast.Assign).Value.(*ast.Array)
		if len(arr1.Elems) != len(arr2.Elems) {
			t.Errorf("%s → %q: %d elems re-parsed as %d", src, printed, len(arr1.Elems), len(arr2.Elems))
		}
	}
}
