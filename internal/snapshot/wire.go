package snapshot

import (
	"encoding/binary"
	"math"
)

// Hand-rolled binary wire primitives: uvarints for counts and refs, fixed
// 64-bit words for float bits and hashes, length-prefixed byte strings.
// Everything is explicit-length, so a truncated or corrupted blob fails
// decoding with an error instead of reading out of bounds.

type writer struct {
	buf []byte
}

func (w *writer) u8(b byte) { w.buf = append(w.buf, b) }
func (w *writer) uvarint(n uint64) {
	w.buf = binary.AppendUvarint(w.buf, n)
}
func (w *writer) u64(n uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, n)
}
func (w *writer) f64(f float64) { w.u64(math.Float64bits(f)) }
func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bool(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = corruptf("truncated at offset %d", r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	n, k := binary.Uvarint(r.buf[r.off:])
	if k <= 0 {
		r.fail()
		return 0
	}
	r.off += k
	return n
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	n := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return n
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bytes() []byte {
	n := r.uvarint()
	// Compare against the remaining bytes, not off+n: a crafted length near
	// 2^64 would wrap the addition and slip past the check.
	if r.err != nil || n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) bool() bool { return r.u8() != 0 }

// ref reads a uvarint that will be used as a table index or ordinal. Values
// that do not fit in a non-negative int are rejected here, so callers never
// see a wire value wrap to a negative index.
func (r *reader) ref() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(math.MaxInt) {
		r.fail()
		return 0
	}
	return int(n)
}

// count reads a length that will be used to allocate a slice, bounding it
// by what the remaining bytes could possibly encode (at least one byte per
// element) so a corrupted length cannot force a huge allocation.
func (r *reader) count() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return 0
	}
	return int(n)
}
