package snapshot

import (
	"repro/internal/interp"
	"repro/internal/rt"
)

// Meta is the blob header: everything a restoring process needs *before*
// it can build the destination realm (the embedded host metadata carries
// source and options), plus the accounting and control flags the embedding
// layer applies after decoding.
type Meta struct {
	// Version is the blob's wire version (in [VersionMin, Version]).
	Version    byte
	HostMeta   []byte
	Steps      uint64
	MemUsed    uint64
	Rand       uint64
	Output     []byte
	Paused     bool
	Done       bool
	SavedAux   bool
	WallUnixMs float64
	// TimerSeq is the source runtime's last-issued setTimeout handle
	// (wire v2; 0 in v1 blobs, which predate real timer IDs).
	TimerSeq uint64
}

// Decoded is the result of decoding a blob into a realm: the runtime
// control state to adopt, the completion value (when Done), and the
// pending-task ledger to repost.
type Decoded struct {
	Meta   Meta
	State  rt.ParkState
	Result interp.Value
	Ledger []rt.LedgerEntry
}

// ReadMeta parses only the header, cheaply — no realm needed. Restore uses
// it to learn the source/options before building anything; admission
// endpoints use it to validate a blob and preview its output.
func ReadMeta(blob []byte) (Meta, error) {
	r := &reader{buf: blob}
	m, err := readMeta(r)
	return m, err
}

func readMeta(r *reader) (Meta, error) {
	var m Meta
	if len(r.buf) < len(magic)+1 || string(r.buf[:len(magic)]) != string(magic[:]) {
		return m, corruptf("bad magic")
	}
	r.off = len(magic)
	v := r.u8()
	if v < VersionMin || v > Version {
		return m, corruptf("wire version %d, want %d..%d", v, VersionMin, Version)
	}
	m.Version = v
	m.HostMeta = r.bytes()
	m.Steps = r.uvarint()
	m.MemUsed = r.uvarint()
	m.Rand = r.u64()
	m.Output = r.bytes()
	flags := r.u8()
	m.Paused = flags&flagPaused != 0
	m.Done = flags&flagDone != 0
	m.SavedAux = flags&flagSavedAux != 0
	m.WallUnixMs = r.f64()
	if v >= 2 {
		m.TimerSeq = r.uvarint()
	}
	return m, r.err
}

// wval is a parsed-but-unresolved wire value: object references cannot
// resolve until the node table is allocated, so parsing and resolution are
// separate passes.
type wval struct {
	tag byte
	num float64
	str string
	ref int
}

// raw parse forms of the table sections.
type rawProp struct {
	key            string
	bits           byte
	val            wval
	getter, setter wval
}

type rawObj struct {
	kind    byte
	class   string  // nodePlain
	funcID  int     // nodeClosure
	envRef  int     // nodeClosure
	frames  []wval  // nodeContinuation
	btarget wval    // nodeBound
	bthis   wval    // nodeBound
	bargs   []wval  // nodeBound
	dateMS  float64 // nodeDate
	proto   wval
	props   []rawProp
	elems   []wval
}

type rawEnv struct {
	slot      bool
	parentRef int
	scopeID   int
	slots     []wval
	vars      []struct {
		key string
		val wval
	}
}

type dec struct {
	in   *interp.Interp
	rt   *rt.R
	code *CodeTable
	reg  *Registry
	ver  byte

	envs  []*interp.Env
	objs  []*interp.Object
	fills []func(rt.Frames) // continuation fills, indexed like objs (nil elsewhere)
}

// Decode rebuilds a blob's graph inside a freshly constructed realm. The
// realm must have been built from the same compiled program (the code
// fingerprint is checked) with its host registry taken at the standard
// construction point (the registry fingerprint is checked). The caller
// applies the returned state: SetRandState/SetAccounting on the
// interpreter, AdoptParked + RepostLedger on the runtime.
func Decode(blob []byte, in *interp.Interp, runtime *rt.R, code *CodeTable, reg *Registry) (*Decoded, error) {
	r := &reader{buf: blob}
	meta, err := readMeta(r)
	if err != nil {
		return nil, err
	}
	if meta.Version == 1 {
		// A v1 blob was written against a realm whose host graph predates
		// the clearTimeout global and the shared Date.prototype; re-link
		// its host ordinals through the filtered legacy view so
		// fingerprints and ordinals line up (registry.go).
		reg = reg.legacyV1()
	}

	regCount := r.uvarint()
	regSum := r.u64()
	if r.err == nil && (int(regCount) != reg.Len() || regSum != reg.Sum()) {
		return nil, corruptf("host registry mismatch (blob %d objects, realm %d) — different runtime build?", regCount, reg.Len())
	}
	funcCount := r.uvarint()
	scopeCount := r.uvarint()
	codeSum := r.u64()
	if r.err == nil && (int(funcCount) != len(code.funcs) || int(scopeCount) != len(code.scopes) || codeSum != code.sum) {
		return nil, corruptf("compiled program mismatch (blob %d funcs/%d scopes, realm %d/%d) — recompilation diverged", funcCount, scopeCount, len(code.funcs), len(code.scopes))
	}

	d := &dec{in: in, rt: runtime, code: code, reg: reg, ver: meta.Version}

	// Parse the env and object tables fully before allocating anything:
	// references point in both directions.
	rawEnvs := make([]rawEnv, r.count())
	for i := range rawEnvs {
		d.parseEnv(r, &rawEnvs[i])
	}
	rawObjs := make([]rawObj, r.count())
	for i := range rawObjs {
		d.parseObj(r, &rawObjs[i])
	}
	nbind := r.count()
	type binding struct {
		name string
		val  wval
	}
	bindings := make([]binding, nbind)
	for i := range bindings {
		bindings[i].name = r.str()
		bindings[i].val = d.rval(r)
	}
	type rawDeltaOp struct {
		kind  byte
		key   string
		prop  rawProp
		proto wval
		elems []wval
	}
	type rawDelta struct {
		ordinal int
		ops     []rawDeltaOp
	}
	deltas := make([]rawDelta, r.count())
	for i := range deltas {
		deltas[i].ordinal = r.ref()
		deltas[i].ops = make([]rawDeltaOp, r.count())
		for j := range deltas[i].ops {
			op := &deltas[i].ops[j]
			op.kind = r.u8()
			switch op.kind {
			case opSetProp:
				op.key = r.str()
				d.parseProp(r, &op.prop)
			case opDelProp:
				op.key = r.str()
			case opSetProto:
				op.proto = d.rval(r)
			case opSetElems:
				op.elems = make([]wval, r.count())
				for k := range op.elems {
					op.elems[k] = d.rval(r)
				}
			default:
				return nil, corruptf("unknown delta op %d", op.kind)
			}
		}
	}
	savedK := make([]wval, r.count())
	for i := range savedK {
		savedK[i] = d.rval(r)
	}
	result := d.rval(r)
	type rawLedger struct {
		kind      byte
		due       float64
		fn        wval
		timerID   uint64
		cancelled bool
		args      []wval
		aux       bool
		frames    []wval
	}
	ledger := make([]rawLedger, r.count())
	for i := range ledger {
		le := &ledger[i]
		le.kind = r.u8()
		le.due = r.f64()
		switch rt.TaskKind(le.kind) {
		case rt.TaskTimer:
			le.fn = d.rval(r)
			if meta.Version >= 2 {
				le.timerID = r.uvarint()
				le.cancelled = r.bool()
				le.args = make([]wval, r.count())
				for j := range le.args {
					le.args[j] = d.rval(r)
				}
			}
		case rt.TaskResume:
			le.aux = r.bool()
			le.frames = make([]wval, r.count())
			for j := range le.frames {
				le.frames[j] = d.rval(r)
			}
		default:
			return nil, corruptf("unknown ledger task kind %d", le.kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, corruptf("%d trailing bytes", len(r.buf)-r.off)
	}

	// Allocate environments, then wire parent chains (references may point
	// forward — discovery order walks child before parent).
	d.envs = make([]*interp.Env, len(rawEnvs))
	for i, re := range rawEnvs {
		if re.slot {
			layout := code.Scope(re.scopeID)
			if layout == nil || len(layout.Names) != len(re.slots) {
				return nil, corruptf("env %d: slot count %d does not match layout", i, len(re.slots))
			}
			d.envs[i] = in.RestoredSlotEnv(nil, layout, make([]interp.Value, len(re.slots)))
		} else {
			d.envs[i] = in.RestoredDynamicEnv(nil, nil)
		}
	}
	global := in.Global
	envOf := func(ref int) (*interp.Env, error) {
		if ref == 0 {
			return global, nil
		}
		if ref < 0 || ref-1 >= len(d.envs) {
			return nil, corruptf("env ref %d out of range", ref)
		}
		return d.envs[ref-1], nil
	}
	for i, re := range rawEnvs {
		p, err := envOf(re.parentRef)
		if err != nil {
			return nil, err
		}
		d.envs[i].SetRestoredParent(p)
	}

	// Allocate objects. Closures pair a code-table function with a decoded
	// environment through the same construction path the evaluator uses,
	// so shape, escape marking, and co-allocation invariants all hold.
	d.objs = make([]*interp.Object, len(rawObjs))
	d.fills = make([]func(rt.Frames), len(rawObjs))
	for i, ro := range rawObjs {
		switch ro.kind {
		case nodePlain:
			d.objs[i] = &interp.Object{Class: ro.class}
		case nodeClosure:
			fn := code.Func(ro.funcID)
			if fn == nil {
				return nil, corruptf("object %d: function ID %d out of range", i, ro.funcID)
			}
			env, err := envOf(ro.envRef)
			if err != nil {
				return nil, err
			}
			d.objs[i] = in.NewClosure(fn, env)
		case nodeBottom:
			d.objs[i] = runtime.NewBottomNative()
		case nodeContinuation:
			k, fill := runtime.RestoredContinuation()
			d.objs[i] = k
			d.fills[i] = fill
		case nodeBound:
			// Two-phase like continuations: the BoundFunction is allocated
			// empty and its Target/This/Args are resolved in the fill loop,
			// since bound graphs can be cyclic (a bound function stored in
			// its own bound args).
			d.objs[i] = &interp.Object{Class: "Function", Bound: &interp.BoundFunction{}}
		case nodeDate:
			d.objs[i] = &interp.Object{Class: "Date", Date: &interp.DateData{MS: ro.dateMS}}
		default:
			return nil, corruptf("unknown object kind %d", ro.kind)
		}
	}

	// Fill environments.
	for i, re := range rawEnvs {
		env := d.envs[i]
		for j, wv := range re.slots {
			v, err := d.resolve(wv)
			if err != nil {
				return nil, err
			}
			env.SlotValues()[j] = v
		}
		if len(re.vars) > 0 {
			vars := make(map[string]interp.Value, len(re.vars))
			for _, kv := range re.vars {
				v, err := d.resolve(kv.val)
				if err != nil {
					return nil, err
				}
				vars[kv.key] = v
			}
			env.AttachDynamicVars(vars)
		}
	}

	// Fill objects: prototype first (the shape tree roots off it), then
	// properties replayed in insertion order — re-interning the same
	// canonical shape in this realm's transition tree — then elements.
	for i, ro := range rawObjs {
		o := d.objs[i]
		proto, err := d.resolveObj(ro.proto)
		if err != nil {
			return nil, err
		}
		o.Proto = proto // pre-shape: no rebuild needed, nothing cached yet
		for _, rp := range ro.props {
			if err := d.applyProp(o, rp); err != nil {
				return nil, err
			}
		}
		if n := len(ro.elems); n > 0 {
			elems := make([]interp.Value, n)
			for j, wv := range ro.elems {
				v, err := d.resolve(wv)
				if err != nil {
					return nil, err
				}
				elems[j] = v
			}
			o.Elems = elems
		}
		if fill := d.fills[i]; fill != nil {
			frames, err := d.resolveFrames(ro.frames)
			if err != nil {
				return nil, err
			}
			fill(frames)
		}
		if b := o.Bound; b != nil {
			if b.Target, err = d.resolve(ro.btarget); err != nil {
				return nil, err
			}
			if b.This, err = d.resolve(ro.bthis); err != nil {
				return nil, err
			}
			if n := len(ro.bargs); n > 0 {
				b.Args = make([]interp.Value, n)
				for j, wv := range ro.bargs {
					if b.Args[j], err = d.resolve(wv); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Replay guest mutations of host objects.
	for _, delta := range deltas {
		target := reg.Object(delta.ordinal)
		if target == nil {
			return nil, corruptf("delta ordinal %d out of range", delta.ordinal)
		}
		for _, op := range delta.ops {
			switch op.kind {
			case opSetProp:
				if err := d.applyProp(target, rawProp{key: op.key, bits: op.prop.bits, val: op.prop.val, getter: op.prop.getter, setter: op.prop.setter}); err != nil {
					return nil, err
				}
			case opDelProp:
				target.Delete(op.key)
			case opSetProto:
				proto, err := d.resolveObj(op.proto)
				if err != nil {
					return nil, err
				}
				target.SetProto(proto)
			case opSetElems:
				elems := make([]interp.Value, len(op.elems))
				for j, wv := range op.elems {
					v, err := d.resolve(wv)
					if err != nil {
						return nil, err
					}
					elems[j] = v
				}
				target.Elems = elems
			}
		}
	}

	// Global bindings. Define writes through existing cells, so bindings
	// already cached by global inline caches keep their identity.
	for _, b := range bindings {
		v, err := d.resolve(b.val)
		if err != nil {
			return nil, err
		}
		global.Define(b.name, v)
	}

	frames, err := d.resolveFrames(savedK)
	if err != nil {
		return nil, err
	}
	res, err := d.resolve(result)
	if err != nil {
		return nil, err
	}
	out := &Decoded{
		Meta:   meta,
		State:  rt.ParkState{Paused: meta.Paused, Frames: frames, Aux: meta.SavedAux, Done: meta.Done},
		Result: res,
	}
	for _, le := range ledger {
		entry := rt.LedgerEntry{Kind: rt.TaskKind(le.kind), Due: le.due, Aux: le.aux,
			TimerID: le.timerID, Cancelled: le.cancelled}
		if entry.Kind == rt.TaskTimer {
			fn, err := d.resolve(le.fn)
			if err != nil {
				return nil, err
			}
			entry.Fn = fn
			if n := len(le.args); n > 0 {
				entry.Args = make([]interp.Value, n)
				for j, wv := range le.args {
					if entry.Args[j], err = d.resolve(wv); err != nil {
						return nil, err
					}
				}
			}
		} else {
			f, err := d.resolveFrames(le.frames)
			if err != nil {
				return nil, err
			}
			entry.Frames = f
		}
		out.Ledger = append(out.Ledger, entry)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

func (d *dec) rval(r *reader) wval {
	var v wval
	v.tag = r.u8()
	switch v.tag {
	case wvUndefined, wvNull, wvFalse, wvTrue:
	case wvNumber:
		v.num = r.f64()
	case wvString:
		v.str = r.str()
	case wvObjRef, wvHostRef:
		v.ref = r.ref()
	default:
		if r.err == nil {
			r.err = corruptf("unknown value tag %d", v.tag)
		}
	}
	return v
}

func (d *dec) parseProp(r *reader, p *rawProp) {
	p.bits = r.u8()
	if p.bits&2 != 0 {
		p.getter = d.rval(r)
		p.setter = d.rval(r)
		return
	}
	p.val = d.rval(r)
}

func (d *dec) parseEnv(r *reader, re *rawEnv) {
	re.slot = r.u8() == 1
	re.parentRef = r.ref()
	if re.slot {
		re.scopeID = r.ref()
		re.slots = make([]wval, r.count())
		for i := range re.slots {
			re.slots[i] = d.rval(r)
		}
	}
	n := r.count()
	if n > 0 {
		re.vars = make([]struct {
			key string
			val wval
		}, n)
		for i := range re.vars {
			re.vars[i].key = r.str()
			re.vars[i].val = d.rval(r)
		}
	}
}

func (d *dec) parseObj(r *reader, ro *rawObj) {
	ro.kind = r.u8()
	switch ro.kind {
	case nodePlain:
		ro.class = r.str()
	case nodeClosure:
		ro.funcID = r.ref()
		ro.envRef = r.ref()
	case nodeBottom:
	case nodeContinuation:
		ro.frames = make([]wval, r.count())
		for i := range ro.frames {
			ro.frames[i] = d.rval(r)
		}
	case nodeBound:
		if d.ver < 2 {
			r.err = corruptf("bound-function node in a v%d blob", d.ver)
			return
		}
		ro.btarget = d.rval(r)
		ro.bthis = d.rval(r)
		ro.bargs = make([]wval, r.count())
		for i := range ro.bargs {
			ro.bargs[i] = d.rval(r)
		}
	case nodeDate:
		if d.ver < 2 {
			r.err = corruptf("date node in a v%d blob", d.ver)
			return
		}
		ro.dateMS = r.f64()
	default:
		if r.err == nil {
			r.err = corruptf("unknown object kind %d", ro.kind)
		}
		return
	}
	ro.proto = d.rval(r)
	ro.props = make([]rawProp, r.count())
	for i := range ro.props {
		ro.props[i].key = r.str()
		d.parseProp(r, &ro.props[i])
	}
	ro.elems = make([]wval, r.count())
	for i := range ro.elems {
		ro.elems[i] = d.rval(r)
	}
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

func (d *dec) resolve(v wval) (interp.Value, error) {
	switch v.tag {
	case wvUndefined:
		return interp.Undefined, nil
	case wvNull:
		return interp.Null, nil
	case wvFalse:
		return interp.False, nil
	case wvTrue:
		return interp.True, nil
	case wvNumber:
		return interp.NumberValue(v.num), nil
	case wvString:
		return interp.StringValue(v.str), nil
	case wvObjRef:
		if v.ref < 0 || v.ref >= len(d.objs) {
			return interp.Undefined, corruptf("object ref %d out of range", v.ref)
		}
		return interp.ObjectValue(d.objs[v.ref]), nil
	case wvHostRef:
		o := d.reg.Object(v.ref)
		if o == nil {
			return interp.Undefined, corruptf("host ref %d out of range", v.ref)
		}
		return interp.ObjectValue(o), nil
	}
	return interp.Undefined, corruptf("unknown value tag %d", v.tag)
}

// resolveObj resolves a wval that must be an object or undefined/nil.
func (d *dec) resolveObj(v wval) (*interp.Object, error) {
	val, err := d.resolve(v)
	if err != nil {
		return nil, err
	}
	if val.IsUndefined() {
		return nil, nil
	}
	o := val.Obj()
	if o == nil {
		return nil, corruptf("expected an object reference, got %v", val)
	}
	return o, nil
}

func (d *dec) resolveFrames(ws []wval) (rt.Frames, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	frames := make(rt.Frames, len(ws))
	for i, wv := range ws {
		v, err := d.resolve(wv)
		if err != nil {
			return nil, err
		}
		frames[i] = v
	}
	return frames, nil
}

func (d *dec) applyProp(o *interp.Object, rp rawProp) error {
	if rp.bits&2 != 0 {
		getter, err := d.resolveObj(rp.getter)
		if err != nil {
			return err
		}
		setter, err := d.resolveObj(rp.setter)
		if err != nil {
			return err
		}
		o.SetAccessor(rp.key, getter, setter, rp.bits&1 != 0)
		return nil
	}
	v, err := d.resolve(rp.val)
	if err != nil {
		return err
	}
	if rp.bits&1 != 0 {
		o.SetOwn(rp.key, v)
	} else {
		o.SetHidden(rp.key, v)
	}
	return nil
}
