// Package snapshot is the serialization codec for paused Stopify guests: it
// encodes the reachable Value graph of a quiescent run — saved continuation
// frames, environment chains, objects with their shapes, closures, pending
// timers — into a self-contained blob, and decodes such a blob into a fresh
// realm built from the same compiled program.
//
// The codec leans on three deterministic structures shared by the encoding
// and decoding realms:
//
//   - the code table: function and scope-layout IDs assigned by a pre-order
//     walk of the compiled program (the compile pipeline is deterministic,
//     so recompiling the embedded source in another process yields the same
//     walk); closures serialize as (function ID, environment ref);
//   - the host registry: every host object reachable from the realm's
//     globals *before* the prelude runs, named by a deterministic
//     traversal path ("Object.prototype.hasOwnProperty", "$suspend", ...);
//     natives serialize as registry ordinals and re-link on restore, and
//     guest mutations of host objects serialize as deltas against a
//     pristine twin realm;
//   - the runtime's pending-task ledger (rt.PendingTasks): event-loop tasks
//     as (due-offset, payload) records.
//
// Bound functions and Date instances are data-backed (interp.BoundFunction
// / interp.DateData) and serialize as first-class node kinds since wire v2.
// Anything outside those structures — a native created at runtime, a
// closure over eval-compiled code, an event-loop task the runtime did not
// post (a Blocking resume, a debugger park) — has no serializable identity,
// and encoding fails with a typed *PinError naming the obstruction instead
// of corrupting state.
package snapshot

import "fmt"

// Version is the wire-format version byte the encoder writes. The decoder
// accepts every version in [VersionMin, Version]: the format carries raw
// graph structure, so guessing across unknown versions corrupts realms, but
// older versions are an explicit subset — v2 added bound-function and
// date-slot node kinds, a timer-handle counter in the header, and
// cancellation/extra-arg fields on timer ledger records, all of which a v1
// blob simply lacks. V1 blobs additionally re-link host references through
// a filtered legacy registry view (registry.go) because the v2 realm's
// host graph gained objects a v1 realm never had.
const (
	Version    = 2
	VersionMin = 1
)

// magic prefixes every blob.
var magic = [4]byte{'S', 'N', 'A', 'P'}

// Pin-reason kinds, the coarse taxonomy behind PinError.Kind. The
// supervisor counts parks blocked per kind, so the effect of shrinking the
// pin set is measurable (metrics.go park_pins_by_reason).
const (
	PinMode     = "mode"     // mid capture/restore, atomic section, or live native stack
	PinTask     = "task"     // event-loop task the runtime did not post
	PinRegistry = "registry" // host registry diverged, or an uncopyable output sink
	PinNative   = "native"   // runtime-created native with no registry identity
	PinEval     = "eval"     // closure or frame over eval-compiled code
	PinHost     = "host"     // object carrying an opaque host payload
	PinInternal = "internal" // engine-internal value reachable from guest state
)

// PinError reports that a guest's live state contains something the codec
// cannot serialize — the guest is "pinned" in memory. The run itself is
// unharmed: Snapshot is read-only, and a pinned guest keeps executing.
type PinError struct {
	// Kind is the coarse pin taxonomy (the Pin* constants).
	Kind string
	// Reason names the non-serializable obstruction.
	Reason string
}

// Error implements error.
func (e *PinError) Error() string { return "snapshot: guest pinned: " + e.Reason }

// pinf builds a PinError.
func pinf(kind, format string, args ...interface{}) error {
	return &PinError{Kind: kind, Reason: fmt.Sprintf(format, args...)}
}

// corruptf reports a malformed or mismatched blob.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("snapshot: corrupt blob: "+format, args...)
}
