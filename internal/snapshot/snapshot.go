// Package snapshot is the serialization codec for paused Stopify guests: it
// encodes the reachable Value graph of a quiescent run — saved continuation
// frames, environment chains, objects with their shapes, closures, pending
// timers — into a self-contained blob, and decodes such a blob into a fresh
// realm built from the same compiled program.
//
// The codec leans on three deterministic structures shared by the encoding
// and decoding realms:
//
//   - the code table: function and scope-layout IDs assigned by a pre-order
//     walk of the compiled program (the compile pipeline is deterministic,
//     so recompiling the embedded source in another process yields the same
//     walk); closures serialize as (function ID, environment ref);
//   - the host registry: every host object reachable from the realm's
//     globals *before* the prelude runs, named by a deterministic
//     traversal path ("Object.prototype.hasOwnProperty", "$suspend", ...);
//     natives serialize as registry ordinals and re-link on restore, and
//     guest mutations of host objects serialize as deltas against a
//     pristine twin realm;
//   - the runtime's pending-task ledger (rt.PendingTasks): event-loop tasks
//     as (due-offset, payload) records.
//
// Anything outside those structures — a native created at runtime (a bound
// function, a per-instance Date method), a closure over eval-compiled code,
// an event-loop task the runtime did not post (a Blocking resume, a
// debugger park) — has no serializable identity, and encoding fails with a
// typed *PinError naming the obstruction instead of corrupting state.
package snapshot

import "fmt"

// Version is the wire-format version byte. A decoder refuses blobs from a
// different version outright: the format carries raw graph structure, and
// guessing across versions corrupts realms.
const Version = 1

// magic prefixes every blob.
var magic = [4]byte{'S', 'N', 'A', 'P'}

// PinError reports that a guest's live state contains something the codec
// cannot serialize — the guest is "pinned" in memory. The run itself is
// unharmed: Snapshot is read-only, and a pinned guest keeps executing.
type PinError struct {
	// Reason names the non-serializable obstruction.
	Reason string
}

// Error implements error.
func (e *PinError) Error() string { return "snapshot: guest pinned: " + e.Reason }

// pinf builds a PinError.
func pinf(format string, args ...interface{}) error {
	return &PinError{Reason: fmt.Sprintf(format, args...)}
}

// corruptf reports a malformed or mismatched blob.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("snapshot: corrupt blob: "+format, args...)
}
