package snapshot

import (
	"math"
	"sort"

	"repro/internal/interp"
	"repro/internal/rt"
)

// Input is everything the encoder needs from the embedding layer. The
// caller (core.AsyncRun.Snapshot) guarantees quiescence: no goroutine is
// executing guest code, so the graph walk is read-only and race-free.
type Input struct {
	In   *interp.Interp
	RT   *rt.R
	Code *CodeTable
	Reg  *Registry

	// HostMeta is an opaque header the embedding layer round-trips —
	// core stores the program source and compile options there, so a
	// restoring process can rebuild an identical realm before decoding.
	HostMeta []byte
	// Output is the console output produced so far, carried by value.
	Output []byte
	// Result is the main chain's completion value when the run finished
	// normally and is draining timers (rt reports Done).
	Result interp.Value
	// WallUnixMs timestamps the snapshot (wall clock), so a restore can
	// credit parked time against pending timer due-offsets.
	WallUnixMs float64
	// TimerSeq is the last setTimeout handle the runtime issued; a restored
	// runtime continues the sequence so handles stay unique across a park.
	TimerSeq uint64
}

// object node kinds on the wire. nodeBound and nodeDate are wire v2.
const (
	nodePlain = iota
	nodeClosure
	nodeBottom
	nodeContinuation
	nodeBound
	nodeDate
)

// host-delta op kinds on the wire.
const (
	opSetProp = iota
	opDelProp
	opSetProto
	opSetElems
)

// flag bits in the header.
const (
	flagPaused = 1 << iota
	flagDone
	flagSavedAux
)

type enc struct {
	in   *interp.Interp
	reg  *Registry
	code *CodeTable

	objID  map[*interp.Object]int
	objs   []*interp.Object
	objQ   []*interp.Object
	envID  map[*interp.Env]int
	envs   []*interp.Env
	envQ   []*interp.Env
	deltas []hostDelta

	err error
}

type hostDelta struct {
	ordinal int
	ops     []deltaOp
}

type deltaOp struct {
	kind  byte
	key   string
	prop  interp.Prop
	proto interp.Value // opSetProto: the new prototype (undefined = nil)
	elems []interp.Value
}

// Encode serializes a quiescent run. It returns a *PinError when live state
// reaches outside the serializable boundary.
func Encode(input Input) ([]byte, error) {
	r := input.RT
	if !r.ModeNormal() {
		return nil, pinf(PinMode, "runtime is mid capture/restore (not at a statement boundary)")
	}
	if input.In.InAtomic() {
		return nil, pinf(PinMode, "a native callback section is active")
	}
	if input.In.Depth() != 0 {
		return nil, pinf(PinMode, "guest frames are live on the native stack")
	}
	st := r.SnapshotState()
	tasks := r.PendingTasks()
	if got := r.Loop.Len(); got != len(tasks) {
		return nil, pinf(PinTask, "%d event-loop task(s) not owned by the runtime (blocking host call or debugger)", got-len(tasks))
	}
	prist := pristine()
	if input.Reg.Sum() != prist.Sum() || input.Reg.Len() != prist.Len() {
		return nil, pinf(PinRegistry, "host registry diverged from the pristine realm (host natives installed after realm construction?)")
	}

	e := &enc{
		in:    input.In,
		reg:   input.Reg,
		code:  input.Code,
		objID: make(map[*interp.Object]int),
		envID: make(map[*interp.Env]int),
	}

	// Host deltas first: comparing against the pristine twin tells us which
	// guest values hang off mutated host objects, and those values are
	// discovery roots like any other.
	e.collectDeltas(prist)

	// Discovery: assign IDs to every reachable non-registry object and
	// every reachable environment frame, in deterministic root order.
	root := input.In.Global
	globalNames := root.GlobalNames()
	for _, name := range globalNames {
		v, _ := root.Lookup(name)
		e.discoverValue(v)
	}
	for _, f := range st.Frames {
		e.discoverValue(f)
	}
	e.discoverValue(input.Result)
	for _, t := range tasks {
		e.discoverValue(t.Fn)
		for _, a := range t.Args {
			e.discoverValue(a)
		}
		for _, f := range t.Frames {
			e.discoverValue(f)
		}
	}
	for _, d := range e.deltas {
		for _, op := range d.ops {
			e.discoverProp(op.prop)
			e.discoverValue(op.proto)
			for _, v := range op.elems {
				e.discoverValue(v)
			}
		}
	}
	e.drain()
	if e.err != nil {
		return nil, e.err
	}

	// Emission.
	w := &writer{}
	w.buf = append(w.buf, magic[:]...)
	w.u8(Version)
	w.bytes(input.HostMeta)
	w.uvarint(input.In.Steps)
	w.uvarint(input.In.MemUsed())
	w.u64(input.In.RandState())
	w.bytes(input.Output)
	var flags byte
	if st.Paused {
		flags |= flagPaused
	}
	if st.Done {
		flags |= flagDone
	}
	if st.Aux {
		flags |= flagSavedAux
	}
	w.u8(flags)
	w.f64(input.WallUnixMs)
	w.uvarint(input.TimerSeq)

	w.uvarint(uint64(e.reg.Len()))
	w.u64(e.reg.Sum())
	w.uvarint(uint64(len(e.code.funcs)))
	w.uvarint(uint64(len(e.code.scopes)))
	w.u64(e.code.sum)

	e.emitEnvs(w)
	e.emitObjects(w)

	w.uvarint(uint64(len(globalNames)))
	for _, name := range globalNames {
		v, _ := root.Lookup(name)
		w.str(name)
		e.value(w, v)
	}

	w.uvarint(uint64(len(e.deltas)))
	for _, d := range e.deltas {
		w.uvarint(uint64(d.ordinal))
		w.uvarint(uint64(len(d.ops)))
		for _, op := range d.ops {
			w.u8(op.kind)
			switch op.kind {
			case opSetProp:
				w.str(op.key)
				e.prop(w, op.prop)
			case opDelProp:
				w.str(op.key)
			case opSetProto:
				e.value(w, op.proto)
			case opSetElems:
				w.uvarint(uint64(len(op.elems)))
				for _, v := range op.elems {
					e.value(w, v)
				}
			}
		}
	}

	w.uvarint(uint64(len(st.Frames)))
	for _, f := range st.Frames {
		e.value(w, f)
	}
	e.value(w, input.Result)

	w.uvarint(uint64(len(tasks)))
	for _, t := range tasks {
		w.u8(byte(t.Kind))
		w.f64(t.Due)
		switch t.Kind {
		case rt.TaskTimer:
			e.value(w, t.Fn)
			w.uvarint(t.TimerID)
			w.bool(t.Cancelled)
			w.uvarint(uint64(len(t.Args)))
			for _, a := range t.Args {
				e.value(w, a)
			}
		case rt.TaskResume:
			w.bool(t.Aux)
			w.uvarint(uint64(len(t.Frames)))
			for _, f := range t.Frames {
				e.value(w, f)
			}
		}
	}

	if e.err != nil {
		return nil, e.err
	}
	return w.buf, nil
}

// ---------------------------------------------------------------------------
// Host deltas
// ---------------------------------------------------------------------------

// collectDeltas diffs every registry object against its pristine twin.
// Value equality across the two realms: primitives by payload, objects by
// matching registry ordinal (a host object can only equal its own twin; a
// guest object is never equal to anything pristine).
func (e *enc) collectDeltas(prist *Registry) {
	for i := 0; i < e.reg.Len(); i++ {
		live, twin := e.reg.Object(i), prist.Object(i)
		var ops []deltaOp
		liveProps := live.OwnProps()
		twinProps := twin.OwnProps()
		twinByKey := make(map[string]interp.Prop, len(twinProps))
		for _, p := range twinProps {
			twinByKey[p.Key] = p.Prop
		}
		liveKeys := make(map[string]bool, len(liveProps))
		for _, p := range liveProps {
			liveKeys[p.Key] = true
			tp, ok := twinByKey[p.Key]
			if !ok || !e.propEq(p.Prop, tp, prist) {
				ops = append(ops, deltaOp{kind: opSetProp, key: p.Key, prop: p.Prop})
			}
		}
		for _, p := range twinProps {
			if !liveKeys[p.Key] {
				ops = append(ops, deltaOp{kind: opDelProp, key: p.Key})
			}
		}
		if !e.protoEq(live.Proto, twin.Proto, prist) {
			ops = append(ops, deltaOp{kind: opSetProto, proto: interp.ObjectValue(live.Proto)})
		}
		if !e.elemsEq(live.Elems, twin.Elems, prist) {
			ops = append(ops, deltaOp{kind: opSetElems, elems: live.Elems})
		}
		if len(ops) > 0 {
			e.deltas = append(e.deltas, hostDelta{ordinal: i, ops: ops})
		}
	}
}

func (e *enc) propEq(a, b interp.Prop, prist *Registry) bool {
	return a.Enumerable == b.Enumerable &&
		e.protoEq(a.Getter, b.Getter, prist) &&
		e.protoEq(a.Setter, b.Setter, prist) &&
		e.hostValueEq(a.Value, b.Value, prist)
}

// protoEq compares two object pointers across the live/pristine realms.
func (e *enc) protoEq(a, b *interp.Object, prist *Registry) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	ai, aok := e.reg.Ordinal(a)
	bi, bok := prist.Ordinal(b)
	return aok && bok && ai == bi
}

func (e *enc) hostValueEq(a, b interp.Value, prist *Registry) bool {
	if a.Tag() != b.Tag() {
		return false
	}
	switch a.Tag() {
	case interp.TagUndefined, interp.TagNull:
		return true
	case interp.TagBool:
		return a.Bool() == b.Bool()
	case interp.TagNumber:
		return math.Float64bits(a.Num()) == math.Float64bits(b.Num())
	case interp.TagString:
		return a.Str() == b.Str()
	case interp.TagObject:
		return e.protoEq(a.Obj(), b.Obj(), prist)
	}
	return false
}

func (e *enc) elemsEq(a, b []interp.Value, prist *Registry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !e.hostValueEq(a[i], b[i], prist) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------------

func (e *enc) discoverValue(v interp.Value) {
	if e.err != nil {
		return
	}
	if v.Tag() > interp.TagObject {
		e.err = pinf(PinInternal, "an engine-internal value (iterator or constructor sentinel) is reachable")
		return
	}
	o := v.Obj()
	if o == nil {
		return
	}
	e.discoverObject(o)
}

func (e *enc) discoverObject(o *interp.Object) {
	if e.err != nil || o == nil {
		return
	}
	if _, ok := e.reg.Ordinal(o); ok {
		return
	}
	if _, ok := e.objID[o]; ok {
		return
	}
	e.objID[o] = len(e.objs)
	e.objs = append(e.objs, o)
	e.objQ = append(e.objQ, o)
}

func (e *enc) discoverEnv(env *interp.Env) {
	if e.err != nil || env == nil || env.IsGlobalFrame() {
		return
	}
	if _, ok := e.envID[env]; ok {
		return
	}
	e.envID[env] = len(e.envs)
	e.envs = append(e.envs, env)
	e.envQ = append(e.envQ, env)
}

func (e *enc) discoverProp(p interp.Prop) {
	e.discoverObject(p.Getter)
	e.discoverObject(p.Setter)
	e.discoverValue(p.Value)
}

// drain processes the discovery worklists iteratively (guest graphs can be
// arbitrarily deep — recursion would blow the Go stack on a long list).
func (e *enc) drain() {
	for e.err == nil && (len(e.objQ) > 0 || len(e.envQ) > 0) {
		if n := len(e.objQ); n > 0 {
			o := e.objQ[n-1]
			e.objQ = e.objQ[:n-1]
			e.scanObject(o)
			continue
		}
		n := len(e.envQ)
		env := e.envQ[n-1]
		e.envQ = e.envQ[:n-1]
		e.scanEnv(env)
	}
}

// scanObject classifies o and discovers its children. Classification must
// agree with emitObjects.
func (e *enc) scanObject(o *interp.Object) {
	switch {
	case o.Native != nil:
		switch o.NativeName {
		case "$bottom":
			// Closes over the runtime only; rebuilt by NewBottomNative.
		case "continuation":
			frames, ok := rt.ContinuationFrames(o)
			if !ok {
				e.err = pinf(PinNative, "continuation value without reified frames")
				return
			}
			for _, f := range frames {
				e.discoverValue(f)
			}
		default:
			e.err = pinf(PinNative, "native function %q was created at runtime and has no registry name", o.NativeName)
			return
		}
	case o.Fn != nil:
		if _, ok := e.code.FuncID(o.Fn.Decl); !ok {
			e.err = pinf(PinEval, "closure over code outside the compiled program (eval)")
			return
		}
		e.discoverEnv(o.Fn.Env)
	case o.Bound != nil:
		// Data-backed bound function: target, receiver, and partial args
		// are ordinary graph edges.
		e.discoverValue(o.Bound.Target)
		e.discoverValue(o.Bound.This)
		for _, v := range o.Bound.Args {
			e.discoverValue(v)
		}
	case o.Date != nil:
		// Pure data slot; nothing beyond the uniform tail to discover.
	default:
		if o.Extra != nil {
			e.err = pinf(PinHost, "object of class %q carries a host payload", o.Class)
			return
		}
	}
	e.discoverObject(o.Proto)
	for _, p := range o.OwnProps() {
		e.discoverProp(p.Prop)
	}
	for _, v := range o.Elems {
		e.discoverValue(v)
	}
}

func (e *enc) scanEnv(env *interp.Env) {
	if layout := env.Layout(); layout != nil {
		if _, ok := e.code.ScopeID(layout); !ok {
			e.err = pinf(PinEval, "environment frame with a layout outside the compiled program (eval)")
			return
		}
	}
	e.discoverEnv(env.Parent())
	for _, v := range env.SlotValues() {
		e.discoverValue(v)
	}
	for _, v := range env.DynamicVars() {
		e.discoverValue(v)
	}
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

// value tags on the wire.
const (
	wvUndefined = iota
	wvNull
	wvFalse
	wvTrue
	wvNumber
	wvString
	wvObjRef
	wvHostRef
)

func (e *enc) value(w *writer, v interp.Value) {
	switch v.Tag() {
	case interp.TagUndefined:
		w.u8(wvUndefined)
	case interp.TagNull:
		w.u8(wvNull)
	case interp.TagBool:
		if v.Bool() {
			w.u8(wvTrue)
		} else {
			w.u8(wvFalse)
		}
	case interp.TagNumber:
		w.u8(wvNumber)
		w.f64(v.Num())
	case interp.TagString:
		w.u8(wvString)
		w.str(v.Str())
	case interp.TagObject:
		e.objRef(w, v.Obj())
	}
}

// objRef writes a reference to o (host ordinal or node ID). nil encodes as
// undefined — used for absent prototypes and absent getter/setter halves.
func (e *enc) objRef(w *writer, o *interp.Object) {
	if o == nil {
		w.u8(wvUndefined)
		return
	}
	if ord, ok := e.reg.Ordinal(o); ok {
		w.u8(wvHostRef)
		w.uvarint(uint64(ord))
		return
	}
	id, ok := e.objID[o]
	if !ok {
		// Discovery visited everything reachable from the roots; an
		// unknown object here is a codec bug, not guest behavior.
		e.err = corruptf("object escaped discovery (encoder bug)")
		return
	}
	w.u8(wvObjRef)
	w.uvarint(uint64(id))
}

func (e *enc) prop(w *writer, p interp.Prop) {
	var bits byte
	if p.Enumerable {
		bits |= 1
	}
	if p.Getter != nil || p.Setter != nil {
		bits |= 2
	}
	w.u8(bits)
	if bits&2 != 0 {
		e.objRef(w, p.Getter)
		e.objRef(w, p.Setter)
		return
	}
	e.value(w, p.Value)
}

func (e *enc) emitEnvs(w *writer) {
	w.uvarint(uint64(len(e.envs)))
	for _, env := range e.envs {
		layout := env.Layout()
		if layout != nil {
			w.u8(1)
		} else {
			w.u8(0)
		}
		e.envRef(w, env.Parent())
		if layout != nil {
			id, _ := e.code.ScopeID(layout)
			w.uvarint(uint64(id))
			slots := env.SlotValues()
			w.uvarint(uint64(len(slots)))
			for _, v := range slots {
				e.value(w, v)
			}
		}
		vars := env.DynamicVars()
		keys := make([]string, 0, len(vars))
		for k := range vars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.str(k)
			e.value(w, vars[k])
		}
	}
}

// envRef: 0 is the global frame, i+1 is env node i.
func (e *enc) envRef(w *writer, env *interp.Env) {
	if env == nil || env.IsGlobalFrame() {
		w.uvarint(0)
		return
	}
	id, ok := e.envID[env]
	if !ok {
		e.err = corruptf("environment escaped discovery (encoder bug)")
		return
	}
	w.uvarint(uint64(id) + 1)
}

func (e *enc) emitObjects(w *writer) {
	w.uvarint(uint64(len(e.objs)))
	for _, o := range e.objs {
		switch {
		case o.Native != nil && o.NativeName == "$bottom":
			w.u8(nodeBottom)
		case o.Native != nil: // "continuation"; scanObject pinned the rest
			w.u8(nodeContinuation)
			frames, _ := rt.ContinuationFrames(o)
			w.uvarint(uint64(len(frames)))
			for _, f := range frames {
				e.value(w, f)
			}
		case o.Fn != nil:
			w.u8(nodeClosure)
			id, _ := e.code.FuncID(o.Fn.Decl)
			w.uvarint(uint64(id))
			e.envRef(w, o.Fn.Env)
		case o.Bound != nil:
			w.u8(nodeBound)
			e.value(w, o.Bound.Target)
			e.value(w, o.Bound.This)
			w.uvarint(uint64(len(o.Bound.Args)))
			for _, v := range o.Bound.Args {
				e.value(w, v)
			}
		case o.Date != nil:
			w.u8(nodeDate)
			w.f64(o.Date.MS)
		default:
			w.u8(nodePlain)
			w.str(o.Class)
		}
		// Uniform tail for every kind: prototype, own props in insertion
		// order, elements.
		e.objRef(w, o.Proto)
		props := o.OwnProps()
		w.uvarint(uint64(len(props)))
		for _, p := range props {
			w.str(p.Key)
			e.prop(w, p.Prop)
		}
		w.uvarint(uint64(len(o.Elems)))
		for _, v := range o.Elems {
			e.value(w, v)
		}
	}
}
