package snapshot

import (
	"encoding/binary"
	"math"
	"testing"
)

// TestReaderBytesLengthOverflow feeds bytes() a crafted uvarint length near
// 2^64. A naive bounds check (off+n > len) wraps and slices with a negative
// length; the reader must instead fail with a corruption error.
func TestReaderBytesLengthOverflow(t *testing.T) {
	for _, n := range []uint64{math.MaxUint64, math.MaxUint64 - 2, math.MaxUint64 - 16, 1 << 63} {
		blob := binary.AppendUvarint(nil, n)
		blob = append(blob, "payload"...)
		r := &reader{buf: blob}
		if b := r.bytes(); b != nil {
			t.Fatalf("length %d: bytes() = %q, want nil", n, b)
		}
		if r.err == nil {
			t.Fatalf("length %d: reader did not fail", n)
		}
	}
}

// TestReaderRefOverflow checks that ref() rejects wire values that would
// wrap to a negative int instead of handing them to table-index callers.
func TestReaderRefOverflow(t *testing.T) {
	for _, n := range []uint64{math.MaxUint64, uint64(math.MaxInt) + 1, 1 << 63} {
		r := &reader{buf: binary.AppendUvarint(nil, n)}
		if got := r.ref(); got != 0 || r.err == nil {
			t.Fatalf("ref %d: got %d, err %v; want 0 and a corruption error", n, got, r.err)
		}
	}
	r := &reader{buf: binary.AppendUvarint(nil, 42)}
	if got := r.ref(); got != 42 || r.err != nil {
		t.Fatalf("ref 42: got %d, err %v", got, r.err)
	}
}

// TestReadMetaCraftedLength is the reviewer PoC: a blob with valid magic and
// version whose host-meta length uvarint is 2^64-3. ReadMeta must return a
// corruption error, not panic with a slice-bounds fault.
func TestReadMetaCraftedLength(t *testing.T) {
	blob := append([]byte{}, magic[:]...)
	blob = append(blob, Version)
	blob = binary.AppendUvarint(blob, math.MaxUint64-2)
	blob = append(blob, make([]byte, 32)...)
	if _, err := ReadMeta(blob); err == nil {
		t.Fatal("ReadMeta accepted a blob with a 2^64-3 length prefix")
	}
}
