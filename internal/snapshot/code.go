package snapshot

import (
	"hash/fnv"
	"strconv"

	"repro/internal/ast"
)

// CodeTable assigns deterministic IDs to every function literal and every
// scope layout in a compiled program, by a pre-order walk of the program
// body. The whole compile pipeline (desugar → prelude → ANF → boxes →
// instrument → resolve) is deterministic, so compiling the same source with
// the same options in another process — or just another realm — yields a
// tree whose walk visits structurally identical functions in the same
// order. That makes (function ID, captured environment) a portable closure
// identity, the classic code/data split of image-based serialization.
type CodeTable struct {
	funcs   []*ast.Func
	funcID  map[*ast.Func]int
	scopes  []*ast.ScopeInfo
	scopeID map[*ast.ScopeInfo]int
	sum     uint64
}

// NewCodeTable walks prog and returns its table.
func NewCodeTable(prog *ast.Program) *CodeTable {
	t := &CodeTable{
		funcID:  make(map[*ast.Func]int),
		scopeID: make(map[*ast.ScopeInfo]int),
	}
	addScope := func(s *ast.ScopeInfo) {
		if s == nil {
			return
		}
		if _, ok := t.scopeID[s]; ok {
			return
		}
		t.scopeID[s] = len(t.scopes)
		t.scopes = append(t.scopes, s)
	}
	for _, stmt := range prog.Body {
		ast.Walk(stmt, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Func:
				if _, ok := t.funcID[x]; !ok {
					t.funcID[x] = len(t.funcs)
					t.funcs = append(t.funcs, x)
					addScope(x.Scope)
				}
			case *ast.Try:
				addScope(x.CatchScope)
			}
			return true
		})
	}
	t.sum = t.fingerprint()
	return t
}

// fingerprint hashes the structural identity of the table — function names,
// arities, and slot layouts — so a decode against a realm whose compile
// diverged (different options, a nondeterministic pass) fails loudly
// instead of pairing environments with the wrong layouts.
func (t *CodeTable) fingerprint() uint64 {
	h := fnv.New64a()
	num := func(n int) {
		h.Write([]byte(strconv.Itoa(n)))
		h.Write([]byte{';'})
	}
	for _, fn := range t.funcs {
		h.Write([]byte(fn.Name))
		h.Write([]byte{0})
		num(len(fn.Params))
	}
	for _, s := range t.scopes {
		for _, name := range s.Names {
			h.Write([]byte(name))
			h.Write([]byte{0})
		}
		num(len(s.Names))
	}
	return h.Sum64()
}

// FuncID resolves a function literal to its ID; ok is false for functions
// outside the compiled program (eval-compiled code).
func (t *CodeTable) FuncID(fn *ast.Func) (int, bool) {
	id, ok := t.funcID[fn]
	return id, ok
}

// ScopeID resolves a scope layout to its ID.
func (t *CodeTable) ScopeID(s *ast.ScopeInfo) (int, bool) {
	id, ok := t.scopeID[s]
	return id, ok
}

// Func returns the function with the given ID, or nil.
func (t *CodeTable) Func(id int) *ast.Func {
	if id < 0 || id >= len(t.funcs) {
		return nil
	}
	return t.funcs[id]
}

// Scope returns the scope layout with the given ID, or nil.
func (t *CodeTable) Scope(id int) *ast.ScopeInfo {
	if id < 0 || id >= len(t.scopes) {
		return nil
	}
	return t.scopes[id]
}
