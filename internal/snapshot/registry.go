package snapshot

import (
	"hash/fnv"
	"strconv"
	"strings"
	"sync"

	"repro/internal/eventloop"
	"repro/internal/interp"
	"repro/internal/rt"
)

// Registry is the host-object re-link table: every object reachable from a
// realm's globals before the prelude runs — builtins, prototypes, the
// Stopify runtime's natives and stack arrays — indexed by a deterministic
// traversal path. Host objects cross the serialization boundary by name:
// the encoder writes the ordinal, the decoder re-links the ordinal to the
// same-path object in the destination realm. Guest mutations *of* host
// objects (a monkey-patched builtin, a property added to Object.prototype)
// are captured separately, as deltas against a pristine twin realm (see
// encode.go), so the registry itself never needs to copy initial state.
//
// The traversal is deterministic because everything it consults is:
// global names sorted, own properties in shape insertion order, elements
// in index order, prototype last. Both sides build their registry at the
// same realm-construction point (after the runtime installs its globals,
// before the prelude executes), so ordinals agree; a fingerprint in the
// blob turns any drift into a loud decode error.
type Registry struct {
	paths  []string
	objs   []*interp.Object
	byObj  map[*interp.Object]int
	byPath map[string]int
	sum    uint64
}

// NewRegistry enumerates the realm's pre-prelude host graph. Call it right
// after rt.New (and any host-native installation that must survive
// snapshots), before the prelude runs.
func NewRegistry(in *interp.Interp) *Registry {
	r := &Registry{
		byObj:  make(map[*interp.Object]int),
		byPath: make(map[string]int),
	}
	root := in.Global
	for _, name := range root.GlobalNames() {
		v, _ := root.Lookup(name)
		r.visit(name, v)
	}
	h := fnv.New64a()
	for _, p := range r.paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	r.sum = h.Sum64()
	return r
}

func (r *Registry) visit(path string, v interp.Value) {
	o := v.Obj()
	if o == nil {
		return
	}
	if _, ok := r.byObj[o]; ok {
		return
	}
	idx := len(r.objs)
	r.byObj[o] = idx
	r.byPath[path] = idx
	r.objs = append(r.objs, o)
	r.paths = append(r.paths, path)
	for _, p := range o.OwnProps() {
		if p.Prop.Getter != nil {
			r.visit(path+"."+p.Key+":get", interp.ObjectValue(p.Prop.Getter))
		}
		if p.Prop.Setter != nil {
			r.visit(path+"."+p.Key+":set", interp.ObjectValue(p.Prop.Setter))
		}
		r.visit(path+"."+p.Key, p.Prop.Value)
	}
	for i, e := range o.Elems {
		r.visit(path+"["+strconv.Itoa(i)+"]", e)
	}
	if o.Proto != nil {
		r.visit(path+".__proto__", interp.ObjectValue(o.Proto))
	}
}

// Ordinal resolves a host object to its registry ordinal.
func (r *Registry) Ordinal(o *interp.Object) (int, bool) {
	i, ok := r.byObj[o]
	return i, ok
}

// Object resolves an ordinal back to the realm's object.
func (r *Registry) Object(i int) *interp.Object {
	if i < 0 || i >= len(r.objs) {
		return nil
	}
	return r.objs[i]
}

// Len reports the registry size.
func (r *Registry) Len() int { return len(r.objs) }

// Sum is the path-list fingerprint embedded in blobs.
func (r *Registry) Sum() uint64 { return r.sum }

// Path names an ordinal (diagnostics).
func (r *Registry) Path(i int) string { return r.paths[i] }

// legacyV1 returns the registry as a wire-v1 decoder must see it. Wire v2's
// realm grew host-graph additions a v1 realm never had: the clearTimeout
// global, the shared Date.prototype subtree, and the $boundFn/$boundArgs
// construct-support natives. All are *first* reachable under exactly those
// paths (every other object on those subtrees — Object.prototype, the Date
// constructor — was already visited earlier in the DFS), so filtering the
// paths out and recomputing the fingerprint reproduces the v1 traversal's
// ordinal assignment exactly. A dropped ordinal cannot appear in a v1 blob:
// the object did not exist in the realm that wrote it.
func (r *Registry) legacyV1() *Registry {
	lr := &Registry{
		byObj:  make(map[*interp.Object]int),
		byPath: make(map[string]int),
	}
	for i, p := range r.paths {
		if p == "clearTimeout" || p == "$boundFn" || p == "$boundArgs" ||
			p == "Date.prototype" || strings.HasPrefix(p, "Date.prototype.") {
			continue
		}
		idx := len(lr.objs)
		lr.byObj[r.objs[i]] = idx
		lr.byPath[p] = idx
		lr.objs = append(lr.objs, r.objs[i])
		lr.paths = append(lr.paths, p)
	}
	h := fnv.New64a()
	for _, p := range lr.paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	lr.sum = h.Sum64()
	return lr
}

// The pristine twin: one throwaway realm per process, built with default
// options and never executed, whose registry supplies the *initial* state
// of every host object for delta comparison. The host graph's structure
// does not depend on engine profile, clocks, or runtime options — only on
// which natives the interpreter and runtime install, which is fixed — so
// one twin serves every snapshot in the process. Guarded by a Once; the
// realm costs a few hundred objects.
var (
	pristineOnce sync.Once
	pristineReg  *Registry
)

func pristine() *Registry {
	pristineOnce.Do(func() {
		loop := eventloop.New(eventloop.NewVirtualClock())
		in := interp.New(interp.Options{Loop: loop})
		rt.New(in, loop, rt.Options{})
		pristineReg = NewRegistry(in)
	})
	return pristineReg
}
