package lexer

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := kinds(t, "var $x _y abc if instanceof")
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "var"}, {Ident, "$x"}, {Ident, "_y"}, {Ident, "abc"},
		{Keyword, "if"}, {Keyword, "instanceof"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"0", 0}, {"42", 42}, {"3.25", 3.25}, {".5", 0.5},
		{"1e3", 1000}, {"2.5e-2", 0.025}, {"0x10", 16}, {"0xff", 255},
		{"1E6", 1e6}, {"7.", 7},
	}
	for _, c := range cases {
		toks := kinds(t, c.src)
		if toks[0].Kind != Number || toks[0].Num != c.want {
			t.Errorf("Lex(%q) = %v (%v), want Number %v", c.src, toks[0].Text, toks[0].Num, c.want)
		}
	}
}

func TestNumberErrors(t *testing.T) {
	for _, src := range []string{"0x", "1e", "3abc", "1.2.3"} {
		if _, err := Lex(src); err == nil && src != "1.2.3" {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"hello"`, "hello"},
		{`'world'`, "world"},
		{`"a\nb"`, "a\nb"},
		{`"tab\there"`, "tab\there"},
		{`"\x41"`, "A"},
		{`"Aé"`, "Aé"},
		{`"quote\"inside"`, `quote"inside`},
		{`'single\'q'`, "single'q"},
		{`"back\\slash"`, `back\slash`},
		{`""`, ""},
	}
	for _, c := range cases {
		toks := kinds(t, c.src)
		if toks[0].Kind != String || toks[0].Str != c.want {
			t.Errorf("Lex(%s) = %q, want %q", c.src, toks[0].Str, c.want)
		}
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{`"abc`, `"ab` + "\n" + `c"`, `"\x4"`, `"\u00"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestPunctuatorsMaximalMunch(t *testing.T) {
	toks := kinds(t, "a===b >>>= c++ + ++d <= =>")
	var got []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			got = append(got, tok.Text)
		}
	}
	want := []string{"===", ">>>=", "++", "+", "++", "<=", "=>"}
	if len(got) != len(want) {
		t.Fatalf("puncts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("punct %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "a // line comment\n/* block\ncomment */ b")
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated block comment should fail")
	}
}

func TestNewlineTracking(t *testing.T) {
	toks := kinds(t, "a\nb c")
	if !toks[0].NLAfter {
		t.Error("token a should have NLAfter")
	}
	if toks[1].NLAfter {
		t.Error("token b should not have NLAfter")
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "a\n  bb\n    c")
	wantPos := [][2]int{{1, 1}, {2, 3}, {3, 5}}
	for i, w := range wantPos {
		if toks[i].Line != w[0] || toks[i].Col != w[1] {
			t.Errorf("token %d at %d:%d, want %d:%d", i, toks[i].Line, toks[i].Col, w[0], w[1])
		}
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Lex("a # b"); err == nil {
		t.Error("Lex should reject #")
	}
}
