// Package lexer tokenizes JavaScript source for the parser. It handles the
// full lexical grammar the repository's JS subset needs: identifiers and
// keywords, decimal/hex/exponent numbers, single- and double-quoted strings
// with escapes, line and block comments, all multi-character punctuators,
// and the newline tracking required for automatic semicolon insertion.
package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String
	Punct
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "eof"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Punct:
		return "punctuator"
	}
	return "unknown"
}

// Token is a single lexical token.
type Token struct {
	Kind    Kind
	Text    string  // identifier name, keyword, punctuator, or raw literal
	Num     float64 // value for Number tokens
	Str     string  // decoded value for String tokens
	Line    int
	Col     int
	NLAfter bool // a line terminator follows this token (drives ASI)
}

// Error is a lexical error with a position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

var keywords = map[string]bool{
	"break": true, "case": true, "catch": true, "continue": true,
	"const": true, "default": true, "delete": true, "do": true,
	"else": true, "false": true, "finally": true, "for": true,
	"function": true, "if": true, "in": true, "instanceof": true,
	"let": true, "new": true, "null": true, "return": true,
	"switch": true, "this": true, "throw": true, "true": true,
	"try": true, "typeof": true, "var": true, "void": true, "while": true,
}

// puncts holds all punctuators, longest first so maximal munch works.
var puncts = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=", "**=",
	"=>", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
}

// Lex tokenizes src, returning the token stream (terminated by an EOF
// token) or a positioned error.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		if len(toks) > 0 && l.sawNewline {
			toks[len(toks)-1].NLAfter = true
		}
		l.sawNewline = false
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src        string
	pos        int
	line, col  int
	sawNewline bool
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
		l.sawNewline = true
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := Ident
		if keywords[text] {
			kind = Keyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.number(line, col)
	case c == '"' || c == '\'':
		return l.stringLit(line, col)
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: Punct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, l.errf("unexpected character %q", c)
}

func (l *lexer) number(line, col int) (Token, error) {
	start := l.pos
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			return Token{}, l.errf("malformed hex literal")
		}
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.pos], 16, 64)
		if err != nil {
			return Token{}, l.errf("malformed hex literal: %v", err)
		}
		return Token{Kind: Number, Text: l.src[start:l.pos], Num: float64(v), Line: line, Col: col}, nil
	}
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			return Token{}, l.errf("malformed exponent")
		}
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, l.errf("malformed number %q: %v", text, err)
	}
	if l.pos < len(l.src) && isIdentStart(l.peek()) {
		return Token{}, l.errf("identifier starts immediately after number")
	}
	return Token{Kind: Number, Text: text, Num: v, Line: line, Col: col}, nil
}

func (l *lexer) stringLit(line, col int) (Token, error) {
	quote := l.advance()
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated string")
		}
		c := l.peek()
		if c == '\n' {
			return Token{}, l.errf("newline in string literal")
		}
		l.advance()
		if c == quote {
			break
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		if l.pos >= len(l.src) {
			return Token{}, l.errf("unterminated escape")
		}
		e := l.advance()
		switch e {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case 'v':
			b.WriteByte('\v')
		case '0':
			b.WriteByte(0)
		case 'x':
			if l.pos+1 >= len(l.src) || !isHexDigit(l.peek()) || !isHexDigit(l.peek2()) {
				return Token{}, l.errf("malformed \\x escape")
			}
			h := string([]byte{l.advance(), l.advance()})
			v, _ := strconv.ParseUint(h, 16, 8)
			b.WriteByte(byte(v))
		case 'u':
			if l.pos+3 >= len(l.src) {
				return Token{}, l.errf("malformed \\u escape")
			}
			var h [4]byte
			for i := 0; i < 4; i++ {
				if !isHexDigit(l.peek()) {
					return Token{}, l.errf("malformed \\u escape")
				}
				h[i] = l.advance()
			}
			v, _ := strconv.ParseUint(string(h[:]), 16, 32)
			if v >= 0xD800 && v <= 0xDFFF {
				// Lone surrogate: keep its natural 3-byte (WTF-8) encoding
				// so "\ud800".charCodeAt(0) reads back 0xD800 — WriteRune
				// would mangle it to U+FFFD.
				b.WriteByte(0xE0 | byte(v>>12))
				b.WriteByte(0x80 | byte(v>>6&0x3F))
				b.WriteByte(0x80 | byte(v&0x3F))
			} else {
				b.WriteRune(rune(v))
			}
		case '\n':
			// Line continuation: contributes nothing.
		default:
			b.WriteByte(e)
		}
	}
	return Token{Kind: String, Text: l.src[:0], Str: b.String(), Line: line, Col: col}, nil
}
