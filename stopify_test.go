package stopify

import (
	"strings"
	"testing"

	"repro/internal/eventloop"
)

// TestFacadeRoundTrip exercises the public API end to end: compile, run,
// verify against the raw baseline.
func TestFacadeRoundTrip(t *testing.T) {
	src := `
function gcd(a, b) { while (b !== 0) { var t = b; b = a % b; a = t; } return a; }
console.log(gcd(462, 1071));`
	cfg := RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 1}
	want, err := RunRaw(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSource(src, Defaults(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || want != "21\n" {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestFacadePauseResume(t *testing.T) {
	src := `var n = 0; while (n < 50000) { n++; } console.log(n);`
	opts := Defaults()
	opts.Timer = "countdown"
	opts.CountdownN = 100
	c, err := Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	paused := false
	run.Pause(func() { paused = true })
	for i := 0; i < 10000 && !paused; i++ {
		if !run.Loop.RunOne() {
			break
		}
	}
	if !paused {
		t.Fatal("did not pause")
	}
	run.Resume()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if !run.Finished() {
		t.Fatal("did not finish after resume")
	}
}

func TestEnginesExposed(t *testing.T) {
	engines := Engines()
	for _, name := range []string{"chrome", "edge", "firefox", "safari", "chromebook"} {
		if engines[name] == nil {
			t.Errorf("missing engine %q", name)
		}
	}
}

func TestCompiledSourceIsJavaScript(t *testing.T) {
	c, err := Compile(`console.log(1);`, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	out := c.Source()
	for _, marker := range []string{"$mode", "$suspend", "function $main"} {
		if !strings.Contains(out, marker) {
			t.Errorf("instrumented source missing %q", marker)
		}
	}
}

// TestSupervisorFacade exercises the public multi-tenant surface: a small
// fleet through NewSupervisor/Submit/Wait, with one tenant killed by
// policy.
func TestSupervisorFacade(t *testing.T) {
	sup := NewSupervisor(SupervisorOptions{Workers: 2, QuantumSteps: 400})
	defer sup.Close()
	var guests []*Guest
	for i := 0; i < 8; i++ {
		g, err := sup.Submit(Submission{Source: `
var n = 0;
for (var i = 0; i < 500; i++) { n += i; }
console.log("ok", n);
`})
		if err != nil {
			t.Fatal(err)
		}
		guests = append(guests, g)
	}
	bad, err := sup.Submit(Submission{
		Source: `while (true) { var x = 1; }`,
		Policy: &GuestPolicy{MaxTotalSteps: 20000},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range guests {
		res := g.Wait()
		if res.Err != nil || res.Output != "ok 124750\n" {
			t.Fatalf("tenant failed: err=%v output=%q", res.Err, res.Output)
		}
	}
	if res := bad.Wait(); res.Err == nil {
		t.Fatal("step-budget tenant not terminated")
	}
}
