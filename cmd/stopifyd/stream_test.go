package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/supervisor"
)

// The streaming-output contract: ?follow=1 delivers bytes the guest has not
// even produced yet at request time, and a dropped client reconnects
// losslessly by passing the byte count it already holds as ?from=.
func TestOutputFollowAndReconnect(t *testing.T) {
	sup := supervisor.New(supervisor.Options{Workers: 2})
	defer sup.Close()
	srv := &server{sup: sup, retain: time.Minute, doneAt: map[uint64]time.Time{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/output", srv.handleOutput)
	ts := httptest.NewServer(srv.withRecover(mux))
	defer ts.Close()

	// A multi-turn guest: output trickles out across timer turns, so the
	// follower must wait mid-stream rather than read one prefilled buffer.
	g, err := sup.Submit(supervisor.SubmitOptions{Source: `
var turn = 0;
function step() {
  console.log("line", turn);
  turn++;
  if (turn < 4) { setTimeout(step, 40); }
}
step();
`})
	if err != nil {
		t.Fatal(err)
	}
	want := "line 0\nline 1\nline 2\nline 3\n"

	// Follow from byte 0, starting before the guest has produced anything.
	// The body closes when the guest finishes; its content must be the whole
	// transcript.
	resp, err := http.Get(fmt.Sprintf("%s/output?id=%d&follow=1", ts.URL, g.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != want {
		t.Fatalf("follow stream = %q, want %q", body, want)
	}

	res := g.Wait()
	if res.Err != nil {
		t.Fatalf("guest error: %v", res.Err)
	}

	// Reconnect: a client that already holds the first line resumes at its
	// offset and gets exactly the rest.
	from := len("line 0\n")
	resp, err = http.Get(fmt.Sprintf("%s/output?id=%d&from=%d", ts.URL, g.ID, from))
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(tail) != want[from:] {
		t.Fatalf("reconnect from %d = %q, want %q", from, tail, want[from:])
	}
	if got := resp.Header.Get("X-Stopify-Next-Offset"); got != fmt.Sprint(len(want)) {
		t.Fatalf("next offset header = %q, want %d", got, len(want))
	}

	// Follow-mode reconnect on a finished guest drains the tail and closes.
	resp, err = http.Get(fmt.Sprintf("%s/output?id=%d&follow=1&from=%d", ts.URL, g.ID, from))
	if err != nil {
		t.Fatal(err)
	}
	tail, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(tail) != want[from:] {
		t.Fatalf("follow reconnect = %q, want %q", tail, want[from:])
	}

	// An offset past the end is clamped, not an error: empty body, next
	// offset pinned to the recorded length.
	resp, err = http.Get(fmt.Sprintf("%s/output?id=%d&from=%d", ts.URL, g.ID, len(want)+100))
	if err != nil {
		t.Fatal(err)
	}
	over, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(over) != 0 || resp.Header.Get("X-Stopify-Next-Offset") != fmt.Sprint(len(want)) {
		t.Fatalf("past-end read = %q (next %s), want empty at %d",
			over, resp.Header.Get("X-Stopify-Next-Offset"), len(want))
	}
}
