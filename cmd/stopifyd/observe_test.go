package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/interp"
	"repro/internal/supervisor"
)

// newObserveServer assembles the daemon in-process (no binary, no port
// hunting): a real supervisor behind the same mux and middleware main()
// builds, with the process log captured into logBuf.
func newObserveServer(t *testing.T, backend string, profileEvery uint64, logJSON bool, logBuf *bytes.Buffer) *httptest.Server {
	t.Helper()
	sup := supervisor.New(supervisor.Options{
		Workers:      2,
		MaxPending:   256,
		QuantumSteps: 1000,
		Backend:      backend,
		ProfileEvery: profileEvery,
	})
	t.Cleanup(func() { sup.Close() })
	srv := &server{
		sup:          sup,
		retain:       time.Minute,
		doneAt:       map[uint64]time.Time{},
		defaults:     supervisor.Policy{MaxOutputBytes: 1 << 20},
		profileEvery: profileEvery,
		logJSON:      logJSON,
		bootNonce:    "cafe0000",
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/run", srv.handleRun)
	mux.HandleFunc("/status", srv.handleStatus)
	mux.HandleFunc("/metrics", srv.handleMetrics)
	mux.HandleFunc("/trace", srv.handleTrace)
	mux.HandleFunc("/profile", srv.handleProfile)
	ts := httptest.NewServer(srv.withLog(srv.withRecover(mux)))
	t.Cleanup(ts.Close)

	log.SetOutput(logBuf)
	t.Cleanup(func() { log.SetOutput(os.Stderr) })
	return ts
}

// observeSrc keeps the hot statements inside named functions so the profile
// endpoint has real guest names to attribute.
const observeSrc = `
function crunch(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s += i * i; }
  return s;
}
function driver() {
  var t = 0;
  for (var k = 0; k < 40; k++) { t += crunch(300); }
  return t;
}
console.log(driver());
`

// waitDone polls /status until the run reports finished.
func waitDone(t *testing.T, base string, id uint64) {
	t.Helper()
	waitFor(t, func() bool {
		_, body := get(t, base+"/status?id="+itoa(id))
		var st struct {
			Finished bool `json:"finished"`
		}
		return json.Unmarshal([]byte(body), &st) == nil && st.Finished
	}, 15*time.Second, "guest never finished")
}

func itoa(id uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + id%10)
		id /= 10
		if id == 0 {
			return string(b[i:])
		}
	}
}

// TestObservabilityEndpoints drives the full observe surface on both
// engines: run a guest, then read back its trace (JSON lines and Chrome
// format), its folded-stack profile naming real guest functions, and a
// Prometheus scrape — all stamped with request ids, all logged as JSON.
func TestObservabilityEndpoints(t *testing.T) {
	for _, backend := range []string{"tree", "bytecode"} {
		t.Run(backend, func(t *testing.T) {
			var logBuf bytes.Buffer
			ts := newObserveServer(t, backend, 97, true, &logBuf)
			id := submit(t, ts.URL, observeSrc)
			waitDone(t, ts.URL, id)

			// Folded-stack profile: per-tenant prefix, real function names.
			code, prof := get(t, ts.URL+"/profile?id="+itoa(id))
			if code != http.StatusOK {
				t.Fatalf("/profile: HTTP %d", code)
			}
			if interp.ProfilerEnabled() {
				if !strings.Contains(prof, "crunch") || !strings.Contains(prof, "driver") {
					t.Errorf("profile does not name the guest's functions:\n%s", prof)
				}
				for _, line := range strings.Split(strings.TrimSpace(prof), "\n") {
					if !strings.HasPrefix(line, "guest"+itoa(id)+";") {
						t.Fatalf("profile line %q lacks the tenant prefix", line)
					}
				}
			}

			// JSON-lines trace, filtered to this guest.
			code, trace := get(t, ts.URL+"/trace?id="+itoa(id))
			if code != http.StatusOK {
				t.Fatalf("/trace: HTTP %d", code)
			}
			sawFinish := false
			for _, line := range strings.Split(strings.TrimSpace(trace), "\n") {
				var ev struct {
					Type  string `json:"type"`
					Guest uint64 `json:"guest"`
				}
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("trace line %q: %v", line, err)
				}
				if ev.Guest != id {
					t.Fatalf("trace filter leaked guest %d", ev.Guest)
				}
				if ev.Type == "finish" {
					sawFinish = true
				}
			}
			if !sawFinish {
				t.Error("filtered trace has no finish event")
			}

			// Chrome rendering parses as one JSON document.
			_, chrome := get(t, ts.URL+"/trace?format=chrome")
			var doc struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal([]byte(chrome), &doc); err != nil || len(doc.TraceEvents) == 0 {
				t.Errorf("chrome trace invalid (err=%v, %d events)", err, len(doc.TraceEvents))
			}

			// Prometheus scrape alongside the JSON default.
			_, prom := get(t, ts.URL+"/metrics?format=prom")
			if !strings.Contains(prom, "# TYPE stopify_guests_completed_total counter") {
				t.Errorf("prom scrape missing typed counters:\n%.300s", prom)
			}
			_, plain := get(t, ts.URL+"/metrics")
			if !strings.Contains(plain, `"completed"`) {
				t.Error("/metrics JSON default broke")
			}

			// Request ids: echoed on the wire...
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			rid := resp.Header.Get("X-Stopify-Request-Id")
			if !strings.HasPrefix(rid, "cafe0000-") {
				t.Errorf("X-Stopify-Request-Id = %q, want boot-nonce prefix", rid)
			}

			// ...and in the structured log, one JSON object per request.
			logged := false
			for _, line := range strings.Split(logBuf.String(), "\n") {
				idx := strings.IndexByte(line, '{')
				if idx < 0 {
					continue
				}
				var entry struct {
					RequestID string  `json:"request_id"`
					Method    string  `json:"method"`
					Path      string  `json:"path"`
					Guest     string  `json:"guest"`
					Status    int     `json:"status"`
					Duration  float64 `json:"duration_ms"`
				}
				if err := json.Unmarshal([]byte(line[idx:]), &entry); err != nil {
					t.Fatalf("unparseable JSON log line %q: %v", line, err)
				}
				if entry.Path == "/profile" && entry.Guest == itoa(id) &&
					entry.Status == http.StatusOK && entry.RequestID != "" {
					logged = true
				}
			}
			if !logged {
				t.Errorf("no JSON log line for the /profile request:\n%s", logBuf.String())
			}
		})
	}
}

// TestProfileEndpointDisabled: without -profile-every the endpoint must
// explain itself, not return an empty profile that looks like "no samples".
func TestProfileEndpointDisabled(t *testing.T) {
	var logBuf bytes.Buffer
	ts := newObserveServer(t, "", 0, false, &logBuf)
	id := submit(t, ts.URL, `console.log("x");`)
	waitDone(t, ts.URL, id)
	code, body := get(t, ts.URL+"/profile?id="+itoa(id))
	if code != http.StatusConflict {
		t.Fatalf("/profile with profiling off: HTTP %d, want 409", code)
	}
	if !strings.Contains(body, "-profile-every") {
		t.Errorf("error %q does not tell the operator which flag to set", body)
	}
}
