package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSnapshotHandoffSmoke is the cross-process restore check the CI
// snapshot leg runs: build the real binary, start TWO daemons, run a guest
// halfway on the first, pause it, pull its serialized continuation over
// /snapshot (which kills the source copy — hand-off, not copy), push the
// blob into the second daemon over /restore, and assert the guest finishes
// there with the full output — phase1 printed in process A, phase2 in
// process B — and its cumulative step accounting intact.
func TestSnapshotHandoffSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}

	bin := filepath.Join(t.TempDir(), "stopifyd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	baseA := startDaemon(t, bin)
	baseB := startDaemon(t, bin)

	// The traveler: prints, schedules its finale on a *bound function* timer
	// with a forwarded extra arg (plus a cancelled twin that must stay dead
	// in process B), holds a Date whose time-value must survive the move,
	// then burns enough statements to outlive many quanta. The hand-off
	// happens mid-main with both ledger entries pending, so the blob carries
	// every wire-v2 node kind across the process boundary.
	src := `
var born = new Date();
var t0 = born.getTime();
console.log("phase1");
function finishImpl(tag, bonus) {
  var s = 0;
  for (var i = 0; i < 500000; i++) { s = (s + i) % 1048573; }
  console.log(tag, s + bonus, born.getTime() === t0 ? "stable" : "drift");
}
var decoy = setTimeout(finishImpl.bind(null, "never"), 5000, 0);
setTimeout(finishImpl.bind(null, "phase2"), 5000, 7);
clearTimeout(decoy);
var s = 0;
for (var i = 0; i < 2000000; i++) { s = (s + i) % 1048573; }
console.log("mid", s);
`
	mainSum, cbSum := 0, 0
	for i := 0; i < 2000000; i++ {
		mainSum = (mainSum + i) % 1048573
	}
	for i := 0; i < 500000; i++ {
		cbSum = (cbSum + i) % 1048573
	}
	wantOut := fmt.Sprintf("phase1\nmid %d\nphase2 %d stable\n", mainSum, cbSum+7)

	id := submit(t, baseA, src)

	// Wait for phase1 so the run demonstrably progressed in process A, then
	// pause it into quiescence.
	waitFor(t, func() bool {
		_, out := get(t, fmt.Sprintf("%s/output?id=%d", baseA, id))
		return strings.Contains(out, "phase1")
	}, 10*time.Second, "guest never reached phase1 on daemon A")
	post(t, fmt.Sprintf("%s/pause?id=%d", baseA, id), "")
	waitFor(t, func() bool {
		_, body := get(t, fmt.Sprintf("%s/status?id=%d", baseA, id))
		return strings.Contains(body, `"state": "paused"`)
	}, 10*time.Second, "guest never paused on daemon A")

	// Hand off. Default semantics kill the source copy: afterwards exactly
	// one daemon owns the continuation.
	code, body := postStatus(t, fmt.Sprintf("%s/snapshot?id=%d", baseA, id), "")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: HTTP %d: %s", code, body)
	}
	var snap struct {
		Snapshot string `json:"snapshot"`
		Bytes    int    `json:"bytes"`
		Kept     bool   `json:"kept"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot response: %v\n%s", err, body)
	}
	if snap.Bytes == 0 || snap.Snapshot == "" {
		t.Fatalf("empty snapshot: %s", body)
	}
	if snap.Kept {
		t.Error("default snapshot should hand off (kept=false)")
	}

	// Restore into daemon B — a separate process with its own compile of the
	// program and its own runtime prelude.
	reqBody, _ := json.Marshal(map[string]string{"snapshot": snap.Snapshot})
	code, body = postStatus(t, baseB+"/restore", string(reqBody))
	if code != http.StatusOK {
		t.Fatalf("/restore: HTTP %d: %s", code, body)
	}
	var admitted struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &admitted); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		_, body := get(t, fmt.Sprintf("%s/status?id=%d", baseB, admitted.ID))
		return strings.Contains(body, `"finished": true`)
	}, 30*time.Second, "restored guest never finished on daemon B")

	_, out := get(t, fmt.Sprintf("%s/output?id=%d", baseB, admitted.ID))
	if out != wantOut {
		t.Fatalf("handed-off output %q, want %q", out, wantOut)
	}
	_, status := get(t, fmt.Sprintf("%s/status?id=%d", baseB, admitted.ID))
	var st struct {
		Steps uint64 `json:"steps"`
	}
	if err := json.Unmarshal([]byte(status), &st); err != nil {
		t.Fatal(err)
	}
	if st.Steps == 0 {
		t.Error("restored guest lost its step accounting")
	}

	_, metrics := get(t, baseB+"/metrics")
	if !strings.Contains(metrics, `"restore_admits": 1`) {
		t.Errorf("daemon B metrics missing restore admission:\n%s", metrics)
	}

	// The source copy was killed by the hand-off; it must not also have
	// produced phase2 (two daemons running one continuation would).
	_, srcStatus := get(t, fmt.Sprintf("%s/status?id=%d", baseA, id))
	if strings.Contains(srcStatus, "phase2") {
		t.Errorf("source copy kept running after hand-off:\n%s", srcStatus)
	}
}

// startDaemon builds nothing — it launches an already-built binary on a free
// port, registers cleanup, and waits for /healthz.
func startDaemon(t *testing.T, bin string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-quantum", "2000")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	base := "http://" + addr
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}, 10*time.Second, "daemon never became healthy")
	return base
}

func post(t *testing.T, url, body string) {
	t.Helper()
	code, resp := postStatus(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d: %s", url, code, resp)
	}
}

func postStatus(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return resp.StatusCode, b.String()
}
