package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDrainSmoke is the end-to-end graceful-shutdown check the CI drain leg
// runs: build the real binary, start it, put a fleet in flight (including
// guests parked on timers), send SIGTERM mid-fleet, and assert the daemon
// refuses new admissions with Retry-After, flips /readyz to 503 while
// /healthz stays 200, lets every in-flight run finish, logs the drain
// summary, and exits 0.
func TestDrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}

	bin := filepath.Join(t.TempDir(), "stopifyd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Pick a free port; the tiny close-to-bind race is fine for a test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var logBuf bytes.Buffer
	cmd := exec.Command(bin, "-addr", addr, "-workers", "4", "-drain", "10s")
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}, 10*time.Second, "daemon never became healthy")

	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", code)
	}

	// The fleet: quick CPU-bound guests plus timer-parked stragglers that
	// are guaranteed to still be in flight when the signal lands.
	n := 0
	for i := 0; i < 30; i++ {
		submit(t, base, fmt.Sprintf(`var s=%d; for (var i=0;i<500;i++){s=(s+i)%%7919;} console.log("ok",s);`, i))
		n++
	}
	for i := 0; i < 3; i++ {
		submit(t, base, `setTimeout(function(){ console.log("late"); }, 700);`)
		n++
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Mid-drain: liveness stays green, readiness and admission go 503 with
	// a Retry-After hint. The timer stragglers hold the drain open long
	// enough to observe this window.
	waitFor(t, func() bool {
		code, _ := get(t, base+"/readyz")
		return code == http.StatusServiceUnavailable
	}, 5*time.Second, "/readyz never went unready after SIGTERM")
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain: %d, want 200 (drain is not ill-health)", code)
	}
	resp, err := http.Post(base+"/run", "application/json",
		strings.NewReader(`{"source":"console.log(1);"}`))
	if err != nil {
		t.Fatalf("mid-drain submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mid-drain admission: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("mid-drain admission carried no Retry-After")
	}

	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v\nlog:\n%s", err, logBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\nlog:\n%s", logBuf.String())
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "stopifyd: draining") {
		t.Errorf("log missing drain announcement:\n%s", logs)
	}
	sum := ""
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "stopifyd: drained") {
			sum = line
		}
	}
	if sum == "" {
		t.Fatalf("log missing drain summary:\n%s", logs)
	}
	// clean=true and completed=n: nothing was killed — every in-flight run
	// (timers included) finished inside the drain window.
	if !strings.Contains(sum, "clean=true") {
		t.Errorf("drain was not clean: %s", sum)
	}
	if !strings.Contains(sum, fmt.Sprintf("completed=%d", n)) {
		t.Errorf("drain summary %q, want completed=%d", sum, n)
	}
}

func submit(t *testing.T, base, source string) uint64 {
	t.Helper()
	body, err := json.Marshal(map[string]string{"source": source})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var out struct {
		ID uint64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return resp.StatusCode, b.String()
}

func waitFor(t *testing.T, cond func() bool, d time.Duration, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal(msg)
}
