// Command stopifyd is the serving façade over the execution supervisor:
// an HTTP daemon that accepts untrusted JavaScript, schedules it among
// thousands of concurrent tenants on a bounded worker pool, and exposes
// the paper's execution-control operations — pause, resume, inspect,
// graceful kill — per run, over the wire.
//
//	stopifyd -addr :8034 -workers 4
//
//	POST /run     {"source": "...", "lane": "interactive", "deadline_ms": 5000}
//	              → {"id": 7}
//	GET  /status?id=7      → scheduling state, counters, output so far
//	GET  /output?id=7      → raw console output (X-Stopify-Next-Offset for polling)
//	GET  /output?id=7&follow=1&from=120
//	                       → live chunked stream from byte 120; a dropped client
//	                         reconnects with from=<bytes it already has>, losslessly
//	POST /cancel?id=7      → graceful kill at the next yield point
//	POST /pause?id=7       → take the run off the scheduler
//	POST /resume?id=7      → put it back
//	POST /snapshot?id=7    → serialize a quiescent run; &keep=1 leaves it running here
//	POST /restore          {"snapshot": "<base64>"} → admit a blob from any daemon
//	GET  /metrics          → fleet aggregates (queue depth, sched latency P99, ...)
//	GET  /metrics?format=prom → the same, Prometheus text exposition
//	GET  /trace            → flight-recorder ring as JSON lines; ?id= filters
//	                         to one guest, ?format=chrome renders the Chrome
//	                         trace-event JSON that about://tracing loads
//	GET  /profile?id=7     → guest-level sampling profile, folded-stack text
//	                         (requires -profile-every > 0)
//
// Every tenant gets the daemon's default policy unless its request narrows
// it; a misbehaving guest (infinite loop, output bomb) dies by policy
// without disturbing neighbors — the multi-tenant isolation argument of
// the transaction-sandboxing literature, built from yield points.
package main

import (
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/supervisor"
)

func main() {
	var (
		addr       = flag.String("addr", ":8034", "listen address")
		workers    = flag.Int("workers", 4, "executor pool size")
		maxPending = flag.Int("max-pending", 4096, "admission bound (backpressure beyond it)")
		quantum    = flag.Uint64("quantum", 2000, "scheduling quantum in statements")
		deadline   = flag.Duration("deadline", 30*time.Second, "default per-run wall deadline (0 = none)")
		maxSteps   = flag.Uint64("max-steps", 50_000_000, "default per-run statement budget (0 = none)")
		maxOutput  = flag.Int("max-output", 1<<20, "default per-run output cap in bytes")
		backend    = flag.String("backend", "", "execution engine: tree or bytecode (default $STOPIFY_BACKEND)")
		retain     = flag.Duration("retain", 10*time.Minute, "how long finished runs stay pollable before eviction")
		memBudget  = flag.Uint64("mem-budget", 256<<20, "default per-run allocation budget in bytes (0 = unmetered)")
		drainFor   = flag.Duration("drain", 15*time.Second, "how long SIGTERM waits for in-flight runs before killing them")
		maxRes     = flag.Int("max-resident", 0, "max live realms in memory; idle guests beyond it park to snapshots (0 = unlimited)")
		parkDir    = flag.String("park-dir", "", "directory for parked-guest snapshots (empty = keep blobs in memory)")
		profEvery  = flag.Uint64("profile-every", 0, "guest profiler sampling period in statements (0 = profiling off)")
		traceCap   = flag.Int("trace-capacity", 0, "flight-recorder ring capacity in events (0 = default, negative = tracing off)")
		logFormat  = flag.String("log-format", "text", "request log format: text or json")
		pprofAddr  = flag.String("pprof-addr", "", "serve Go pprof (host-process profiling) on this address; empty = off")
	)
	flag.Parse()
	if *logFormat != "text" && *logFormat != "json" {
		log.Fatalf("stopifyd: unknown -log-format %q (want text or json)", *logFormat)
	}

	sup := supervisor.New(supervisor.Options{
		Workers:       *workers,
		MaxPending:    *maxPending,
		QuantumSteps:  *quantum,
		Backend:       *backend,
		MaxResident:   *maxRes,
		ParkDir:       *parkDir,
		ProfileEvery:  *profEvery,
		TraceCapacity: *traceCap,
		DefaultPolicy: supervisor.Policy{
			WallDeadline:   *deadline,
			MaxTotalSteps:  *maxSteps,
			MaxOutputBytes: *maxOutput,
			MemBudgetBytes: *memBudget,
		},
	})

	srv := &server{sup: sup, retain: *retain, doneAt: map[uint64]time.Time{}, defaults: supervisor.Policy{
		WallDeadline:   *deadline,
		MaxTotalSteps:  *maxSteps,
		MaxOutputBytes: *maxOutput,
		MemBudgetBytes: *memBudget,
	}, profileEvery: *profEvery, logJSON: *logFormat == "json"}
	srv.bootNonce = bootNonce()
	go srv.janitor()

	if *pprofAddr != "" {
		// Host-process profiling (the Go runtime: supervisor goroutines, GC,
		// the interpreter as seen from Go). This is a different layer from
		// GET /profile, which samples the *guest's* JavaScript frames; the
		// two answer different questions. Off by default — pprof handlers
		// are not something to expose on the tenant-facing address.
		go func() {
			log.Printf("stopifyd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("stopifyd: pprof listener: %v", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/run", srv.handleRun)
	mux.HandleFunc("/status", srv.handleStatus)
	mux.HandleFunc("/output", srv.handleOutput)
	mux.HandleFunc("/cancel", srv.handleCancel)
	mux.HandleFunc("/pause", srv.handlePause)
	mux.HandleFunc("/resume", srv.handleResume)
	mux.HandleFunc("/snapshot", srv.handleSnapshot)
	mux.HandleFunc("/restore", srv.handleRestore)
	mux.HandleFunc("/metrics", srv.handleMetrics)
	mux.HandleFunc("/trace", srv.handleTrace)
	mux.HandleFunc("/profile", srv.handleProfile)
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.HandleFunc("/readyz", srv.handleReadyz)

	hs := &http.Server{Addr: *addr, Handler: srv.withLog(srv.withRecover(mux))}

	// Graceful shutdown: SIGTERM (what an orchestrator sends) or Ctrl-C
	// flips the daemon into draining mode — admission refuses with
	// Retry-After and /readyz goes unready so a load balancer rotates the
	// node out, while status/output/metrics keep serving. In-flight runs
	// get up to -drain to finish on their own; whatever remains is killed
	// (ErrShutdown) by Close. Only then does the HTTP server stop.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.draining.Store(true)
		log.Printf("stopifyd: draining (up to %s for in-flight runs)", *drainFor)
		drained := sup.DrainTimeout(*drainFor)
		sup.Close()
		m := sup.Metrics()
		log.Printf("stopifyd: drained clean=%v completed=%d failed=%d killed=%d faults=%d",
			drained, m.Completed, m.Failed, m.Killed, m.InternalFaults)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		close(done)
	}()
	log.Printf("stopifyd: serving on %s (%d workers, quantum %d steps)", *addr, *workers, *quantum)
	if err := hs.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

type server struct {
	sup          *supervisor.Supervisor
	defaults     supervisor.Policy
	retain       time.Duration
	profileEvery uint64 // sampling period wired into the supervisor; 0 = /profile refuses
	logJSON      bool   // -log-format=json: one JSON object per request
	bootNonce    string // random per-process prefix for request ids
	reqSeq       atomic.Uint64
	draining     atomic.Bool // SIGTERM received: refuse admission, fail /readyz

	// The supervisor keeps guests addressable until Remove, so a serving
	// daemon must evict or leak one Result (output buffer included) per
	// finished run. ids is every admitted run; doneAt records when the
	// janitor first saw each finish.
	mu     sync.Mutex
	ids    []uint64
	doneAt map[uint64]time.Time
}

// janitor evicts finished runs once they have been pollable for the
// retention window.
func (s *server) janitor() {
	tick := s.retain / 10
	if tick < time.Second {
		tick = time.Second
	}
	for range time.Tick(tick) {
		now := time.Now()
		s.mu.Lock()
		ids := append([]uint64(nil), s.ids...)
		s.mu.Unlock()
		// Decide evictions against the snapshot, then filter s.ids in
		// place under the lock — handleRun may append new ids while the
		// scan runs, and a stale-snapshot write-back would orphan them
		// (leaking their Results forever, the very thing this janitor
		// exists to prevent).
		evict := make(map[uint64]bool)
		for _, id := range ids {
			g := s.sup.Guest(id)
			if g == nil {
				evict[id] = true // already removed
				continue
			}
			if g.State() != supervisor.StateDone {
				continue
			}
			s.mu.Lock()
			first, seen := s.doneAt[id]
			if !seen {
				first = now
				s.doneAt[id] = now
			}
			s.mu.Unlock()
			if now.Sub(first) < s.retain {
				continue
			}
			s.sup.Remove(id)
			evict[id] = true
		}
		s.mu.Lock()
		kept := s.ids[:0]
		for _, id := range s.ids {
			if !evict[id] {
				kept = append(kept, id)
			}
		}
		s.ids = kept
		for id := range evict {
			delete(s.doneAt, id)
		}
		s.mu.Unlock()
	}
}

// runRequest is POST /run's body.
type runRequest struct {
	Source string `json:"source"`
	// Lane: "batch" (default) or "interactive".
	Lane string `json:"lane,omitempty"`
	// DeadlineMs overrides the daemon's default wall deadline (0 keeps it).
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// MaxSteps overrides the default statement budget (0 keeps it).
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// MaxOutputBytes overrides the default output cap (0 keeps it).
	MaxOutputBytes int `json:"max_output_bytes,omitempty"`
	// MemBudgetBytes overrides the default allocation budget (0 keeps it).
	MemBudgetBytes uint64 `json:"mem_budget_bytes,omitempty"`
}

// statusResponse is GET /status's body: the guest Info plus its output and
// result when finished.
type statusResponse struct {
	supervisor.Info
	Output   string `json:"output,omitempty"`
	Finished bool   `json:"finished"`
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		// Draining: this node is going away; tell the client when another
		// attempt (against a healthy node) makes sense.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	pol := s.defaults
	switch req.Lane {
	case "", "batch":
	case "interactive":
		pol.Lane = supervisor.LaneInteractive
	default:
		http.Error(w, "unknown lane "+strconv.Quote(req.Lane), http.StatusBadRequest)
		return
	}
	if req.DeadlineMs > 0 {
		pol.WallDeadline = time.Duration(req.DeadlineMs * float64(time.Millisecond))
	}
	if req.MaxSteps > 0 {
		pol.MaxTotalSteps = req.MaxSteps
	}
	if req.MaxOutputBytes > 0 {
		pol.MaxOutputBytes = req.MaxOutputBytes
	}
	if req.MemBudgetBytes > 0 {
		pol.MemBudgetBytes = req.MemBudgetBytes
	}
	g, err := s.sup.Submit(supervisor.SubmitOptions{Source: req.Source, Policy: &pol})
	switch {
	case err == supervisor.ErrQueueFull:
		w.Header().Set("Retry-After", "1") // backpressure: transient, retry
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err == supervisor.ErrClosed:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, "compile: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	s.ids = append(s.ids, g.ID)
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"id": g.ID})
}

// guest resolves ?id=, writing the HTTP error itself when absent.
func (s *server) guest(w http.ResponseWriter, r *http.Request) *supervisor.Guest {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing id", http.StatusBadRequest)
		return nil
	}
	g := s.sup.Guest(id)
	if g == nil {
		http.Error(w, "no such run", http.StatusNotFound)
		return nil
	}
	return g
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	g := s.guest(w, r)
	if g == nil {
		return
	}
	resp := statusResponse{Info: g.Inspect()}
	if resp.State == "done" {
		resp.Finished = true
		resp.Output = g.Result().Output
	}
	writeJSON(w, resp)
}

// handleOutput serves console output. Plain GET returns everything recorded
// so far (from byte ?from=, default 0) with X-Stopify-Next-Offset naming
// where the next poll should resume. ?follow=1 upgrades to a live stream:
// chunks are flushed as the guest writes them, until the guest finishes or
// the client goes away. A disconnected client reconnects losslessly by
// passing the byte count it already holds as ?from= — output offsets are
// stable for the guest's whole retained life, park/restore included.
func (s *server) handleOutput(w http.ResponseWriter, r *http.Request) {
	g := s.guest(w, r)
	if g == nil {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad from offset", http.StatusBadRequest)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	if r.URL.Query().Get("follow") == "" {
		data, next := g.OutputSince(from)
		w.Header().Set("X-Stopify-Next-Offset", strconv.Itoa(next))
		w.Write(data)
		return
	}

	// Follow mode. The grab-channel-then-read order makes the loop lossless:
	// a write that lands after OutputSince closes the channel we are about to
	// select on, so the next iteration picks it up.
	fl, _ := w.(http.Flusher)
	off := from
	for {
		ch := g.OutputChanged()
		data, next := g.OutputSince(off)
		if len(data) > 0 {
			if _, err := w.Write(data); err != nil {
				return // client went away
			}
			off = next
			if fl != nil {
				fl.Flush()
			}
			continue
		}
		select {
		case <-ch:
		case <-g.Done():
			// Final drain: the guest finished after our last read.
			if data, _ := g.OutputSince(off); len(data) > 0 {
				w.Write(data)
				if fl != nil {
					fl.Flush()
				}
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	g := s.guest(w, r)
	if g == nil {
		return
	}
	g.Kill(nil)
	writeJSON(w, map[string]string{"status": "kill requested"})
}

func (s *server) handlePause(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	g := s.guest(w, r)
	if g == nil {
		return
	}
	g.Pause()
	writeJSON(w, map[string]string{"status": "pause requested"})
}

func (s *server) handleResume(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	g := s.guest(w, r)
	if g == nil {
		return
	}
	g.Resume()
	writeJSON(w, map[string]string{"status": "resumed"})
}

// snapshotResponse is POST /snapshot's body: the serialized continuation,
// base64-encoded for JSON transport, plus its raw size.
type snapshotResponse struct {
	ID       uint64 `json:"id"`
	Snapshot string `json:"snapshot"`
	Bytes    int    `json:"bytes"`
	// Kept reports whether the run is still executing on this daemon
	// (?keep=1); by default a hand-off kills the source copy so exactly one
	// daemon owns the continuation.
	Kept bool `json:"kept"`
}

// handleSnapshot serializes a quiescent run (paused, asleep on a timer, or
// already parked) into a portable blob. The default is hand-off semantics:
// the local copy is killed once the blob is written, so the continuation has
// a single owner; ?keep=1 turns it into a pure checkpoint instead. Snapshot
// works during a drain — evacuating tenants to another node is exactly what
// a draining daemon is for.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	g := s.guest(w, r)
	if g == nil {
		return
	}
	blob, err := s.sup.SnapshotGuest(g.ID)
	switch {
	case err == supervisor.ErrNotQuiescent:
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err == supervisor.ErrFinished:
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err != nil:
		// Pinned (live native, opaque state): the run cannot travel, but it
		// is unharmed and keeps executing here.
		http.Error(w, "snapshot: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	keep := r.URL.Query().Get("keep") != ""
	if !keep {
		g.Kill(nil)
	}
	writeJSON(w, snapshotResponse{
		ID:       g.ID,
		Snapshot: base64.StdEncoding.EncodeToString(blob),
		Bytes:    len(blob),
		Kept:     keep,
	})
}

// restoreRequest is POST /restore's body. Policy fields mirror runRequest;
// zero values keep the daemon defaults. Step and memory accounting inside
// the blob is cumulative, so the budgets bound the guest's whole life — what
// it spent on the originating daemon counts here too.
type restoreRequest struct {
	Snapshot       string  `json:"snapshot"` // base64 blob from /snapshot
	Lane           string  `json:"lane,omitempty"`
	DeadlineMs     float64 `json:"deadline_ms,omitempty"`
	MaxSteps       uint64  `json:"max_steps,omitempty"`
	MaxOutputBytes int     `json:"max_output_bytes,omitempty"`
	MemBudgetBytes uint64  `json:"mem_budget_bytes,omitempty"`
}

// handleRestore admits a snapshot blob — typically produced by /snapshot on
// another daemon — as a new run. Admission is synchronous (a corrupt blob
// fails here, not on a worker later); the realm itself is rebuilt lazily on
// the run's first scheduling turn.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req restoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	blob, err := base64.StdEncoding.DecodeString(req.Snapshot)
	if err != nil {
		http.Error(w, "bad snapshot encoding: "+err.Error(), http.StatusBadRequest)
		return
	}
	pol := s.defaults
	switch req.Lane {
	case "", "batch":
	case "interactive":
		pol.Lane = supervisor.LaneInteractive
	default:
		http.Error(w, "unknown lane "+strconv.Quote(req.Lane), http.StatusBadRequest)
		return
	}
	if req.DeadlineMs > 0 {
		pol.WallDeadline = time.Duration(req.DeadlineMs * float64(time.Millisecond))
	}
	if req.MaxSteps > 0 {
		pol.MaxTotalSteps = req.MaxSteps
	}
	if req.MaxOutputBytes > 0 {
		pol.MaxOutputBytes = req.MaxOutputBytes
	}
	if req.MemBudgetBytes > 0 {
		pol.MemBudgetBytes = req.MemBudgetBytes
	}
	g, err := s.sup.Restore(blob, &pol)
	switch {
	case err == supervisor.ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err == supervisor.ErrClosed:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, "restore: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	s.ids = append(s.ids, g.ID)
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"id": g.ID})
}

// handleMetrics serves fleet aggregates. The JSON shape is the default and
// stays stable for existing pollers; ?format=prom renders the same single
// consistent snapshot as Prometheus text exposition for a scraper.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "":
		writeJSON(w, s.sup.Metrics())
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		supervisor.WriteProm(w, s.sup.Metrics(), s.sup.Windows())
	default:
		http.Error(w, "unknown format (want prom)", http.StatusBadRequest)
	}
}

// handleTrace dumps the flight recorder: every lifecycle event the ring still
// holds, in seq order. ?id= narrows to one guest's events (the per-tenant
// post-mortem view); ?format=chrome renders Chrome trace-event JSON that
// about://tracing or Perfetto loads directly, instead of the JSON-lines
// default.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var id uint64
	if v := r.URL.Query().Get("id"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		id = n
	}
	evs := s.sup.Trace(id)
	switch r.URL.Query().Get("format") {
	case "":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(supervisor.TraceJSONLines(evs))
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(supervisor.ChromeTrace(evs))
	default:
		http.Error(w, "unknown format (want chrome)", http.StatusBadRequest)
	}
}

// handleProfile serves one guest's sampling profile as folded-stack text
// (flamegraph collapsed format) — guest JavaScript frames by function name,
// weighted in executed statements. This profiles the *guest's* code; host-Go
// profiling is the separate -pprof-addr listener. Samples accumulate at turn
// boundaries and survive park/restore, so a profile is available for the
// guest's whole retained life, including after it finishes.
func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if s.profileEvery == 0 {
		http.Error(w, "guest profiling is off: restart stopifyd with -profile-every N", http.StatusConflict)
		return
	}
	g := s.guest(w, r)
	if g == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(supervisor.FoldedText(g.ProfileFolded(), fmt.Sprintf("guest%d", g.ID)))
}

// handleHealthz is liveness: the process is up and serving. It stays 200
// during a drain — the node is healthy, just not accepting new work — so an
// orchestrator does not hard-kill a daemon mid-drain.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: whether this node should receive new traffic.
// A draining node reports 503 so the load balancer rotates it out while
// in-flight runs finish.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// withRecover is the daemon-side panic barrier, the HTTP analogue of the
// supervisor worker's safeTurn: a panic in one handler becomes a logged 500
// for that request. (net/http would recover anyway, but it slams the
// connection shut with no response and no stack in our log.)
func (s *server) withRecover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("stopifyd: panic in %s handler: %v\n%s", r.URL.Path, rec, debug.Stack())
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// bootNonce is the random per-process prefix of request ids: ids stay unique
// across daemon restarts, so a log aggregator never conflates two requests.
func bootNonce() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000" // degraded but functional: ids still unique within the process
	}
	return hex.EncodeToString(b[:])
}

// statusWriter observes the status code and body size a handler produced.
// It forwards Flush so /output's follow mode keeps streaming through the
// logging layer.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// requestLog is one -log-format=json line: everything an operator needs to
// correlate a request with guest lifecycle events in /trace.
type requestLog struct {
	Time       string  `json:"time"`
	RequestID  string  `json:"request_id"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Guest      string  `json:"guest,omitempty"` // ?id= when present
	Status     int     `json:"status"`
	DurationMs float64 `json:"duration_ms"`
	Bytes      int64   `json:"bytes"`
	Remote     string  `json:"remote,omitempty"`
}

// withLog assigns every request an id (echoed as X-Stopify-Request-Id so a
// client can quote it in a bug report) and logs one line per request —
// structured JSON under -log-format=json, a plain access line otherwise.
func (s *server) withLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.bootNonce + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		w.Header().Set("X-Stopify-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK // handler wrote nothing: net/http defaults the status
		}
		dur := time.Since(start)
		if s.logJSON {
			line, _ := json.Marshal(requestLog{
				Time:       start.UTC().Format(time.RFC3339Nano),
				RequestID:  id,
				Method:     r.Method,
				Path:       r.URL.Path,
				Guest:      r.URL.Query().Get("id"),
				Status:     sw.status,
				DurationMs: float64(dur) / float64(time.Millisecond),
				Bytes:      sw.bytes,
				Remote:     r.RemoteAddr,
			})
			log.Printf("%s", line)
		} else {
			log.Printf("stopifyd: %s %s %s %d %db %s", id, r.Method, r.URL.RequestURI(), sw.status, sw.bytes, dur.Round(time.Microsecond))
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
