// Command stopify compiles and runs JavaScript with execution control, the
// CLI face of the library:
//
//	stopify -compile program.js        # print instrumented JavaScript
//	stopify program.js                 # compile and run to completion
//	stopify -engine edge -cont checked program.js
//	stopify -deep -engine firefox deep_recursion.js
//	stopify -repl                      # suspendable REPL (§6.4)
//
// Flags mirror the stopify() options object of Figure 1 in the paper.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	var (
		compileOnly = flag.Bool("compile", false, "print instrumented JavaScript instead of running")
		engineName  = flag.String("engine", "chrome", "engine profile: chrome, edge, firefox, safari, chromebook, uniform")
		cont        = flag.String("cont", "checked", "continuation strategy: checked, exceptional, eager")
		ctor        = flag.String("ctor", "direct", "constructor strategy: direct, wrapped")
		timer       = flag.String("timer", "approx", "time estimator: exact, countdown, approx")
		interval    = flag.Float64("interval", 100, "yield interval in ms (0 disables)")
		implicits   = flag.String("implicits", "none", "implicit conversions: none, plus, full")
		args        = flag.String("args", "none", "arguments sub-language: none, varargs, mixed, full")
		getters     = flag.Bool("getters", false, "instrument getters/setters")
		evalOn      = flag.Bool("eval", false, "stopify eval'd code")
		deep        = flag.Bool("deep", false, "simulate an arbitrarily deep stack")
		seed        = flag.Uint64("seed", 1, "Math.random seed")
		raw         = flag.Bool("raw", false, "run without Stopify (baseline)")
		repl        = flag.Bool("repl", false, "interactive suspendable REPL")
	)
	flag.Parse()

	var src string
	var err error
	if !*repl {
		src, err = readSource(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	}
	prof := engine.Profiles()[*engineName]
	if prof == nil && *engineName == "uniform" {
		prof = engine.Uniform()
	}
	if prof == nil {
		fatal(fmt.Errorf("unknown engine %q", *engineName))
	}

	cfg := core.RunConfig{Engine: prof, Out: os.Stdout, Seed: *seed}
	if *raw {
		if _, err := core.RunRaw(src, cfg); err != nil {
			fatal(err)
		}
		return
	}

	opts := core.Opts{
		Cont:            *cont,
		Ctor:            *ctor,
		Timer:           *timer,
		YieldIntervalMs: *interval,
		Implicits:       *implicits,
		Args:            *args,
		Getters:         *getters,
		Eval:            *evalOn,
		DeepStacks:      *deep,
		Suspend:         true,
	}
	compiled, err := core.Compile(src, opts)
	if err != nil {
		fatal(err)
	}
	if *compileOnly {
		fmt.Print(compiled.Source())
		return
	}
	run, err := compiled.NewRun(cfg)
	if err != nil {
		fatal(err)
	}
	if *repl {
		runREPL(run)
		return
	}
	if err := run.RunToCompletion(); err != nil {
		fatal(err)
	}
}

// runREPL reads lines, evaluates each as a suspendable turn, and prints the
// completion value. Ctrl-D exits.
func runREPL(run *core.AsyncRun) {
	if err := run.RunToCompletion(); err != nil {
		fatal(err)
	}
	fmt.Println("stopify repl — each line runs under execution control; ctrl-D exits")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("js> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := run.EvalAndWait(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if !v.IsUndefined() {
			fmt.Println("=>", run.In.Display(v))
		}
	}
}

func readSource(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stopify:", err)
	os.Exit(1)
}
