// Command stopibench regenerates the paper's evaluation: every table and
// figure of §2 and §6, measured against this repository's substrates.
//
//	stopibench                        # run everything at full settings
//	stopibench -quick                 # fast smoke pass
//	stopibench -fig 2c                # one experiment (2a 2b 2c 5 7 10 11 12 13 14 15 strawmen codesize)
//	stopibench -repeats 10            # paper-grade repetition
//	stopibench -interp-bench F.json   # capture the interpreter perf baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "experiment to run (see Order in internal/bench)")
		quick       = flag.Bool("quick", false, "small workloads, single repetition")
		repeats     = flag.Int("repeats", 0, "timed runs per data point (default 5, paper uses 10)")
		interpBench = flag.String("interp-bench", "", "write ns/op and allocs/op for the interpreter-bound figure benchmarks to this JSON file and exit")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	if *interpBench != "" {
		if err := captureInterpBench(*interpBench); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	if *fig == "all" {
		out, err := bench.RunAll(cfg)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := bench.Experiments()[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "stopibench: unknown figure %q; choose from %v\n", *fig, bench.Order())
		os.Exit(1)
	}
	out, err := runner(cfg)
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stopibench:", err)
		os.Exit(1)
	}
}

// interpBenchResult is one row of the interpreter perf baseline.
type interpBenchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// interpBenchFile is the schema of BENCH_interp.json: a dated snapshot of
// the interpreter-bound figure benchmarks, so the substrate's perf
// trajectory is tracked PR over PR.
type interpBenchFile struct {
	CapturedAt string              `json:"captured_at"`
	GoVersion  string              `json:"go_version"`
	Config     string              `json:"config"`
	Benchmarks []interpBenchResult `json:"benchmarks"`
}

// captureInterpBench times the interpreter-bound figure benchmarks at quick
// settings via testing.Benchmark — the same numbers `go test -bench` on the
// root package reports — and writes them as JSON.
func captureInterpBench(path string) error {
	cfg := bench.QuickConfig()
	figures := []struct {
		name string
		fn   func(bench.Config) (string, error)
	}{
		{"Fig10Languages", func(c bench.Config) (string, error) {
			s, _, err := bench.Fig10Languages(c)
			return s, err
		}},
		{"Fig13OctaneKraken", bench.Fig13OctaneKraken},
	}
	out := interpBenchFile{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Config:     "quick",
	}
	for _, f := range figures {
		f := f
		var failure error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.fn(cfg); err != nil {
					failure = err
					b.FailNow()
				}
			}
		})
		if failure != nil {
			return fmt.Errorf("%s: %w", f.name, failure)
		}
		out.Benchmarks = append(out.Benchmarks, interpBenchResult{
			Name:        f.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-20s %12d ns/op %10d allocs/op %12d B/op\n",
			f.name, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
