// Command stopibench regenerates the paper's evaluation: every table and
// figure of §2 and §6, measured against this repository's substrates.
//
//	stopibench                        # run everything at full settings
//	stopibench -quick                 # fast smoke pass
//	stopibench -fig 2c                # one experiment (2a 2b 2c 5 7 10 11 12 13 14 15 strawmen codesize)
//	stopibench -repeats 10            # paper-grade repetition
//	stopibench -backend bytecode      # force an execution engine for the figures
//	stopibench -interp-bench F.json   # capture the interpreter perf baseline (both engines)
//	stopibench -interp-check F.json   # re-measure and fail on >25% regression
//	stopibench -supervisor            # multi-tenant throughput target (1k guests, 4 workers)
//	stopibench -supervisor -arrival-rate 500 -duration 30s
//	                                  # sustained open-loop load harness (windowed P99)
//	stopibench -supervisor -arrival-rate 500 -duration 30s -supervisor-bench BENCH_supervisor.json
//	                                  # ...and append the run to the committed trajectory
//	stopibench -supervisor-check BENCH_supervisor.json -arrival-rate 150 -duration 10s
//	                                  # re-run and fail on SLO regression vs the trajectory
//	                                  # (leaves a Chrome trace post-mortem under $TMPDIR; -trace-out overrides)
//	stopibench -profile               # where do the figure benchmarks' statements go?
//	                                  # guest-level sampling profile, both engines, top-N tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/supervisor"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "experiment to run (see Order in internal/bench)")
		quick       = flag.Bool("quick", false, "small workloads, single repetition")
		repeats     = flag.Int("repeats", 0, "timed runs per data point (default 5, paper uses 10)")
		backend     = flag.String("backend", "", "execution engine for the figures: tree or bytecode (default: $STOPIFY_BACKEND, else tree)")
		interpBench = flag.String("interp-bench", "", "write ns/op and allocs/op for the interpreter-bound figure benchmarks, under both engines, to this JSON file and exit")
		interpCheck = flag.String("interp-check", "", "re-measure the interpreter benchmarks and fail if any is >25% slower than this snapshot")

		supFlag    = flag.Bool("supervisor", false, "run the multi-tenant supervisor target and exit (closed-loop batch; -arrival-rate switches to the sustained open-loop harness)")
		supGuests  = flag.Int("supervisor-guests", 1000, "guest count for the closed-loop -supervisor target")
		supWorkers = flag.Int("supervisor-workers", 4, "worker pool size for -supervisor")
		supQuantum = flag.Uint64("supervisor-quantum", 2000, "scheduling quantum in statements for -supervisor")
		supBench   = flag.String("supervisor-bench", "", "append the -supervisor result to this JSON trajectory file (BENCH_supervisor.json)")
		supCheck   = flag.String("supervisor-check", "", "run the sustained-load harness and fail if P99 sched latency or error rate regresses past threshold vs the latest load entry in this trajectory file")

		arrivalRate = flag.Float64("arrival-rate", 0, "open-loop arrival rate in guests/sec for -supervisor / -supervisor-check (0 keeps -supervisor closed-loop)")
		duration    = flag.Duration("duration", 10*time.Second, "generation period for the open-loop harness")
		fixedArr    = flag.Bool("fixed-arrivals", false, "fixed-interval arrivals instead of Poisson")
		maxResident = flag.Int("supervisor-max-resident", 0, "MaxResident for the load harness (0 = workers*8, forcing park/restore on the hot path; negative = unbounded)")
		supSeed     = flag.Int64("supervisor-seed", 1, "seed for arrival spacing and churn targeting")

		profFlag   = flag.Bool("profile", false, "profile the Octane/Kraken-like figure suites under both engines with the guest-level sampling profiler and exit")
		profTop    = flag.Int("profile-top", 10, "rows per benchmark in the -profile table")
		profEvery  = flag.Uint64("profile-every", 0, "sampling period in statements for -profile and the load harness (0 = 1000 for -profile, off for the harness)")
		traceOut   = flag.String("trace-out", "", "write the load harness's flight-recorder trace (Chrome trace-event JSON) here; -supervisor-check defaults one under $TMPDIR")
		profileOut = flag.String("profile-out", "", "write the load harness's per-tenant folded-stack profile here (needs -profile-every)")
	)
	flag.Parse()

	if *backend != "" {
		// The figure experiments select their engine through RunConfig's
		// environment default, so one setenv switches every run the
		// harness makes.
		os.Setenv("STOPIFY_BACKEND", *backend)
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	if *profFlag {
		if err := runProfileMode(*profEvery, *profTop); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	if *supFlag || *supCheck != "" {
		loadCfg := supervisor.LoadConfig{
			ArrivalRate:   *arrivalRate,
			Duration:      *duration,
			FixedArrivals: *fixedArr,
			Workers:       *supWorkers,
			QuantumSteps:  *supQuantum,
			MaxResident:   *maxResident,
			Seed:          *supSeed,
			Backend:       os.Getenv("STOPIFY_BACKEND"),
			ProfileEvery:  *profEvery,
			TraceOut:      *traceOut,
			ProfileOut:    *profileOut,
		}
		if loadCfg.ProfileOut != "" && loadCfg.ProfileEvery == 0 {
			fmt.Fprintln(os.Stderr, "stopibench: -profile-out needs -profile-every > 0 (nothing would be sampled)")
			os.Exit(1)
		}
		var err error
		switch {
		case *supCheck != "":
			if loadCfg.ArrivalRate <= 0 {
				loadCfg.ArrivalRate = 150 // smoke-scale default for the gate
			}
			if loadCfg.TraceOut == "" {
				// Every SLO-gate run leaves a post-mortem: when the gate
				// trips on a CI machine nobody can attach to, the flight
				// recorder's last ring is the evidence.
				loadCfg.TraceOut = filepath.Join(os.TempDir(), "stopibench-supervisor-check.trace.json")
			}
			err = checkSupervisorLoad(*supCheck, loadCfg)
		case *arrivalRate > 0:
			err = runSupervisorLoad(loadCfg, *supBench)
		default:
			err = runSupervisorBench(*supGuests, *supWorkers, *supQuantum, *supBench)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	if *interpBench != "" {
		if err := captureInterpBench(*interpBench); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	if *interpCheck != "" {
		if err := checkInterpBench(*interpCheck); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("execution engine: %s\n", activeBackend())

	if *fig == "all" {
		out, err := bench.RunAll(cfg)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := bench.Experiments()[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "stopibench: unknown figure %q; choose from %v\n", *fig, bench.Order())
		os.Exit(1)
	}
	out, err := runner(cfg)
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stopibench:", err)
		os.Exit(1)
	}
}

// supervisorTrajectory is the schema of BENCH_supervisor.json: an appendable
// series of dated supervisor measurements, the serving-scenario counterpart
// of BENCH_interp.json. Each entry records its own config (inside the result
// blocks), so the file can mix closed-loop throughput snapshots and
// sustained-load runs across machines and PRs without losing comparability —
// the check gates only against entries of its own kind.
type supervisorTrajectory struct {
	Entries []supervisorTrajEntry `json:"entries"`
}

// supervisorTrajEntry is one measurement: exactly one of Load / Throughput
// is set, per Kind.
type supervisorTrajEntry struct {
	CapturedAt string                  `json:"captured_at"`
	GoVersion  string                  `json:"go_version"`
	Engine     string                  `json:"engine"`
	Kind       string                  `json:"kind"` // "load" | "throughput"
	Load       *supervisor.LoadResult  `json:"load,omitempty"`
	Throughput *supervisor.BenchResult `json:"throughput,omitempty"`
}

// readTrajectory loads a trajectory file. A missing file is an empty
// trajectory (capture bootstraps it); the pre-trajectory single-snapshot
// format ({"config":..., "result":...}) is converted to one throughput
// entry so old baselines keep working.
func readTrajectory(path string) (*supervisorTrajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &supervisorTrajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var traj supervisorTrajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Entries != nil {
		return &traj, nil
	}
	var legacy struct {
		CapturedAt string `json:"captured_at"`
		GoVersion  string `json:"go_version"`
		Config     struct {
			Engine string `json:"engine"`
		} `json:"config"`
		Result *supervisor.BenchResult `json:"result"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil || legacy.Result == nil {
		return nil, fmt.Errorf("parsing %s: not a trajectory or legacy snapshot", path)
	}
	return &supervisorTrajectory{Entries: []supervisorTrajEntry{{
		CapturedAt: legacy.CapturedAt,
		GoVersion:  legacy.GoVersion,
		Engine:     legacy.Config.Engine,
		Kind:       "throughput",
		Throughput: legacy.Result,
	}}}, nil
}

// appendTrajectory adds one entry to the trajectory at path, creating the
// file if needed.
func appendTrajectory(path string, e supervisorTrajEntry) error {
	traj, err := readTrajectory(path)
	if err != nil {
		return err
	}
	e.CapturedAt = time.Now().UTC().Format(time.RFC3339)
	e.GoVersion = runtime.Version()
	e.Engine = activeBackend()
	traj.Entries = append(traj.Entries, e)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runSupervisorBench executes the closed-loop throughput target: M guests
// (with a 1% hostile infinite-loop injection and an interactive lane share)
// through an N-worker pool, printing guests/sec and the P50/P99 scheduling
// latency, and optionally appending the run to the trajectory.
func runSupervisorBench(guests, workers int, quantum uint64, benchPath string) error {
	cfg := supervisor.BenchConfig{
		Guests:           guests,
		Workers:          workers,
		QuantumSteps:     quantum,
		HostileEvery:     100,
		InteractiveEvery: 4,
		Backend:          os.Getenv("STOPIFY_BACKEND"),
	}
	fmt.Printf("execution engine: %s\n", activeBackend())
	res, err := supervisor.RunBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if benchPath == "" {
		return nil
	}
	return appendTrajectory(benchPath, supervisorTrajEntry{Kind: "throughput", Throughput: res})
}

// runSupervisorLoad executes the sustained open-loop harness and optionally
// appends the run to the trajectory. Unexpected guest outcomes (wrong
// output, an unasked-for error) fail the command — a latency number over
// corrupted tenants would be worthless. Overload symptoms do NOT: an
// open-loop harness pushed past the machine's capacity reports rejects,
// stragglers, and a blown-up windowed P99 honestly, and the SLO verdict
// belongs to -supervisor-check, which gates the same figures against the
// committed baseline.
func runSupervisorLoad(cfg supervisor.LoadConfig, benchPath string) error {
	fmt.Printf("execution engine: %s\n", activeBackend())
	res, err := supervisor.RunLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if res.Unexpected > 0 {
		return fmt.Errorf("sustained load: %d unexpected outcomes — %s",
			res.Unexpected, res.FirstUnexpected)
	}
	if res.Stragglers > 0 || res.Rejected > 0 {
		fmt.Printf("overloaded: %d stragglers past the drain budget, %d rejected admissions — offered load exceeds this machine's capacity\n",
			res.Stragglers, res.Rejected)
	}
	if benchPath == "" {
		return nil
	}
	return appendTrajectory(benchPath, supervisorTrajEntry{Kind: "load", Load: res})
}

// SLO gate thresholds for -supervisor-check. The gate is a smoke alarm for
// CI, not a microbenchmark: the multiplier and the absolute floors absorb
// the machine-to-machine spread between where the baseline was captured and
// where the check runs, while still catching the regressions that matter
// (a scheduling cliff lands at 10x the floor, not 1.1x).
const (
	sloP99Mult    = 3.0   // worst-window P99 may be this much over baseline
	sloP99FloorMs = 250.0 // ...but never gated below this absolute bound
	sloErrMult    = 5.0   // error rate multiplier over baseline
	sloErrFloor   = 0.01  // ...with this absolute floor
)

// checkSupervisorLoad runs the sustained-load harness and fails when its
// windowed P99 scheduling latency or error rate regresses past threshold
// against the most recent load entry in the committed trajectory.
func checkSupervisorLoad(path string, cfg supervisor.LoadConfig) error {
	traj, err := readTrajectory(path)
	if err != nil {
		return err
	}
	var base *supervisorTrajEntry
	for i := range traj.Entries {
		e := &traj.Entries[i]
		if e.Kind != "load" || e.Load == nil {
			continue
		}
		// Latest wins; an engine-matched entry beats an older mismatch.
		if base == nil || base.Engine != activeBackend() || e.Engine == activeBackend() {
			base = e
		}
	}
	if base == nil {
		return fmt.Errorf("%s has no sustained-load entry; capture one with -supervisor -arrival-rate=... -supervisor-bench=%s", path, path)
	}

	fmt.Printf("execution engine: %s\n", activeBackend())
	res, err := supervisor.RunLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if cfg.TraceOut != "" {
		fmt.Printf("flight-recorder trace: %s\n", cfg.TraceOut)
	}

	p99Gate := math.Max(sloP99Mult*base.Load.WorstWindowP99, sloP99FloorMs)
	errGate := math.Max(sloErrMult*base.Load.ErrorRate, sloErrFloor)
	fmt.Printf("supervisor-check vs %s (captured %s, engine %s):\n", path, base.CapturedAt, base.Engine)
	fmt.Printf("  worst-window P99 %8.2f ms  baseline %8.2f ms  gate %8.2f ms\n",
		res.WorstWindowP99, base.Load.WorstWindowP99, p99Gate)
	fmt.Printf("  error rate       %8.4f     baseline %8.4f     gate %8.4f\n",
		res.ErrorRate, base.Load.ErrorRate, errGate)

	var failures []string
	if res.WorstWindowP99 > p99Gate {
		failures = append(failures, fmt.Sprintf(
			"worst-window P99 sched latency %.2f ms exceeds gate %.2f ms (baseline %.2f ms)",
			res.WorstWindowP99, p99Gate, base.Load.WorstWindowP99))
	}
	if res.ErrorRate > errGate {
		failures = append(failures, fmt.Sprintf(
			"error rate %.4f exceeds gate %.4f (baseline %.4f; %d unexpected, %d stragglers, %d rejected)",
			res.ErrorRate, errGate, base.Load.ErrorRate, res.Unexpected, res.Stragglers, res.Rejected))
	}
	if res.Unexpected > 0 {
		failures = append(failures, fmt.Sprintf(
			"%d guests with unexpected outcomes: %s", res.Unexpected, res.FirstUnexpected))
	}
	if len(failures) > 0 {
		return fmt.Errorf("supervisor SLO regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("supervisor-check: within SLO")
	return nil
}

// activeBackend names the engine the next run would use — the "which
// engine ran" note in every stopibench output.
func activeBackend() string {
	if b := os.Getenv("STOPIFY_BACKEND"); b != "" {
		return b
	}
	return core.BackendTree
}

// interpBenchResult is one row of the interpreter perf baseline. Tree-
// walker rows keep the bare figure name ("Fig10Languages"); bytecode rows
// are suffixed ("Fig10Languages@bytecode") so older snapshots without them
// are skipped, not failed.
type interpBenchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// interpBenchFile is the schema of BENCH_interp.json: a dated snapshot of
// the interpreter-bound figure benchmarks, so the substrate's perf
// trajectory is tracked PR over PR.
type interpBenchFile struct {
	CapturedAt string              `json:"captured_at"`
	GoVersion  string              `json:"go_version"`
	Config     string              `json:"config"`
	Benchmarks []interpBenchResult `json:"benchmarks"`
}

// interpBenchReps is how many times each (figure, engine) cell runs; the
// minimum is recorded. Minimum-of-N with the engines interleaved is the
// noise discipline for shared single-core runners: time-varying host load
// inflates individual runs but affects both engines' minima equally.
const interpBenchReps = 8

// measureInterpBench times the interpreter-bound figure benchmarks at
// quick settings under both execution engines, interleaved, reporting the
// per-cell minimum.
func measureInterpBench() ([]interpBenchResult, error) {
	cfg := bench.QuickConfig()
	figures := []struct {
		name string
		fn   func(bench.Config) (string, error)
	}{
		{"Fig10Languages", func(c bench.Config) (string, error) {
			s, _, err := bench.Fig10Languages(c)
			return s, err
		}},
		{"Fig13OctaneKraken", bench.Fig13OctaneKraken},
	}
	backends := []string{core.BackendTree, core.BackendBytecode}
	prev, hadPrev := os.LookupEnv("STOPIFY_BACKEND")
	defer func() {
		if hadPrev {
			os.Setenv("STOPIFY_BACKEND", prev)
		} else {
			os.Unsetenv("STOPIFY_BACKEND")
		}
	}()
	var out []interpBenchResult
	for _, f := range figures {
		type cell struct {
			ns     int64
			allocs int64
			bytes  int64
		}
		mins := map[string]cell{}
		for rep := 0; rep < interpBenchReps; rep++ {
			for _, be := range backends {
				os.Setenv("STOPIFY_BACKEND", be)
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				m0, a0 := ms.Mallocs, ms.TotalAlloc
				start := time.Now()
				if _, err := f.fn(cfg); err != nil {
					return nil, fmt.Errorf("%s (%s): %w", f.name, be, err)
				}
				ns := time.Since(start).Nanoseconds()
				runtime.ReadMemStats(&ms)
				cur, ok := mins[be]
				if !ok || ns < cur.ns {
					mins[be] = cell{
						ns:     ns,
						allocs: int64(ms.Mallocs - m0),
						bytes:  int64(ms.TotalAlloc - a0),
					}
				}
			}
		}
		for _, be := range backends {
			name := f.name
			if be != core.BackendTree {
				name += "@" + be
			}
			m := mins[be]
			out = append(out, interpBenchResult{
				Name: name, NsPerOp: m.ns, AllocsPerOp: m.allocs, BytesPerOp: m.bytes,
			})
			fmt.Printf("%-30s %12d ns/op %10d allocs/op %12d B/op\n",
				name, m.ns, m.allocs, m.bytes)
		}
	}
	return out, nil
}

// captureInterpBench measures and writes the baseline snapshot as JSON.
func captureInterpBench(path string) error {
	results, err := measureInterpBench()
	if err != nil {
		return err
	}
	out := interpBenchFile{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Config:     "quick min-of-" + fmt.Sprint(interpBenchReps),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// interpCheckTolerance is how much slower (ns/op) a benchmark may measure
// than the committed snapshot before the check fails. 25% absorbs the
// run-to-run noise of shared CI machines while still catching real
// interpreter regressions, which historically land at 2x, not 1.1x.
const interpCheckTolerance = 1.25

// checkInterpBench re-measures the interpreter benchmarks and compares
// against the snapshot at path, failing on a >25% ns/op regression.
func checkInterpBench(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base interpBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]interpBenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	results, err := measureInterpBench()
	if err != nil {
		return err
	}
	var failures []string
	for _, r := range results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("%-30s not in snapshot; skipping\n", r.Name)
			continue
		}
		ratio := float64(r.NsPerOp) / float64(b.NsPerOp)
		fmt.Printf("%-30s %12d ns/op vs snapshot %12d (%.2fx)\n",
			r.Name, r.NsPerOp, b.NsPerOp, ratio)
		if ratio > interpCheckTolerance {
			failures = append(failures,
				fmt.Sprintf("%s regressed %.0f%% (%d → %d ns/op)",
					r.Name, (ratio-1)*100, b.NsPerOp, r.NsPerOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("interpreter perf regression beyond %.0f%%:\n  %s",
			(interpCheckTolerance-1)*100, strings.Join(failures, "\n  "))
	}
	fmt.Println("interp-check: within tolerance")
	return nil
}
