// Command stopibench regenerates the paper's evaluation: every table and
// figure of §2 and §6, measured against this repository's substrates.
//
//	stopibench                        # run everything at full settings
//	stopibench -quick                 # fast smoke pass
//	stopibench -fig 2c                # one experiment (2a 2b 2c 5 7 10 11 12 13 14 15 strawmen codesize)
//	stopibench -repeats 10            # paper-grade repetition
//	stopibench -interp-bench F.json   # capture the interpreter perf baseline
//	stopibench -interp-check F.json   # re-measure and fail on >25% regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "experiment to run (see Order in internal/bench)")
		quick       = flag.Bool("quick", false, "small workloads, single repetition")
		repeats     = flag.Int("repeats", 0, "timed runs per data point (default 5, paper uses 10)")
		interpBench = flag.String("interp-bench", "", "write ns/op and allocs/op for the interpreter-bound figure benchmarks to this JSON file and exit")
		interpCheck = flag.String("interp-check", "", "re-measure the interpreter benchmarks and fail if any is >25% slower than this snapshot")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	if *interpBench != "" {
		if err := captureInterpBench(*interpBench); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	if *interpCheck != "" {
		if err := checkInterpBench(*interpCheck); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	if *fig == "all" {
		out, err := bench.RunAll(cfg)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := bench.Experiments()[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "stopibench: unknown figure %q; choose from %v\n", *fig, bench.Order())
		os.Exit(1)
	}
	out, err := runner(cfg)
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stopibench:", err)
		os.Exit(1)
	}
}

// interpBenchResult is one row of the interpreter perf baseline.
type interpBenchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// interpBenchFile is the schema of BENCH_interp.json: a dated snapshot of
// the interpreter-bound figure benchmarks, so the substrate's perf
// trajectory is tracked PR over PR.
type interpBenchFile struct {
	CapturedAt string              `json:"captured_at"`
	GoVersion  string              `json:"go_version"`
	Config     string              `json:"config"`
	Benchmarks []interpBenchResult `json:"benchmarks"`
}

// measureInterpBench times the interpreter-bound figure benchmarks at quick
// settings via testing.Benchmark — the same numbers `go test -bench` on the
// root package reports.
func measureInterpBench() ([]interpBenchResult, error) {
	cfg := bench.QuickConfig()
	figures := []struct {
		name string
		fn   func(bench.Config) (string, error)
	}{
		{"Fig10Languages", func(c bench.Config) (string, error) {
			s, _, err := bench.Fig10Languages(c)
			return s, err
		}},
		{"Fig13OctaneKraken", bench.Fig13OctaneKraken},
	}
	var out []interpBenchResult
	for _, f := range figures {
		f := f
		var failure error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.fn(cfg); err != nil {
					failure = err
					b.FailNow()
				}
			}
		})
		if failure != nil {
			return nil, fmt.Errorf("%s: %w", f.name, failure)
		}
		out = append(out, interpBenchResult{
			Name:        f.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("%-20s %12d ns/op %10d allocs/op %12d B/op\n",
			f.name, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}
	return out, nil
}

// captureInterpBench measures and writes the baseline snapshot as JSON.
func captureInterpBench(path string) error {
	results, err := measureInterpBench()
	if err != nil {
		return err
	}
	out := interpBenchFile{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Config:     "quick",
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// interpCheckTolerance is how much slower (ns/op) a benchmark may measure
// than the committed snapshot before the check fails. 25% absorbs the
// run-to-run noise of shared CI machines while still catching real
// interpreter regressions, which historically land at 2x, not 1.1x.
const interpCheckTolerance = 1.25

// checkInterpBench re-measures the interpreter benchmarks and compares
// against the snapshot at path, failing on a >25% ns/op regression.
func checkInterpBench(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base interpBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]interpBenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	results, err := measureInterpBench()
	if err != nil {
		return err
	}
	var failures []string
	for _, r := range results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("%-20s not in snapshot; skipping\n", r.Name)
			continue
		}
		ratio := float64(r.NsPerOp) / float64(b.NsPerOp)
		fmt.Printf("%-20s %12d ns/op vs snapshot %12d (%.2fx)\n",
			r.Name, r.NsPerOp, b.NsPerOp, ratio)
		if ratio > interpCheckTolerance {
			failures = append(failures,
				fmt.Sprintf("%s regressed %.0f%% (%d → %d ns/op)",
					r.Name, (ratio-1)*100, b.NsPerOp, r.NsPerOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("interpreter perf regression beyond %.0f%%:\n  %s",
			(interpCheckTolerance-1)*100, strings.Join(failures, "\n  "))
	}
	fmt.Println("interp-check: within tolerance")
	return nil
}
