// Command stopibench regenerates the paper's evaluation: every table and
// figure of §2 and §6, measured against this repository's substrates.
//
//	stopibench                        # run everything at full settings
//	stopibench -quick                 # fast smoke pass
//	stopibench -fig 2c                # one experiment (2a 2b 2c 5 7 10 11 12 13 14 15 strawmen codesize)
//	stopibench -repeats 10            # paper-grade repetition
//	stopibench -backend bytecode      # force an execution engine for the figures
//	stopibench -interp-bench F.json   # capture the interpreter perf baseline (both engines)
//	stopibench -interp-check F.json   # re-measure and fail on >25% regression
//	stopibench -supervisor            # multi-tenant throughput target (1k guests, 4 workers)
//	stopibench -supervisor -supervisor-bench BENCH_supervisor.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/supervisor"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "experiment to run (see Order in internal/bench)")
		quick       = flag.Bool("quick", false, "small workloads, single repetition")
		repeats     = flag.Int("repeats", 0, "timed runs per data point (default 5, paper uses 10)")
		backend     = flag.String("backend", "", "execution engine for the figures: tree or bytecode (default: $STOPIFY_BACKEND, else tree)")
		interpBench = flag.String("interp-bench", "", "write ns/op and allocs/op for the interpreter-bound figure benchmarks, under both engines, to this JSON file and exit")
		interpCheck = flag.String("interp-check", "", "re-measure the interpreter benchmarks and fail if any is >25% slower than this snapshot")

		supFlag    = flag.Bool("supervisor", false, "run the multi-tenant supervisor throughput target and exit")
		supGuests  = flag.Int("supervisor-guests", 1000, "guest count for -supervisor")
		supWorkers = flag.Int("supervisor-workers", 4, "worker pool size for -supervisor")
		supQuantum = flag.Uint64("supervisor-quantum", 2000, "scheduling quantum in statements for -supervisor")
		supBench   = flag.String("supervisor-bench", "", "also write the -supervisor result to this JSON file (the BENCH_supervisor.json trajectory record)")
	)
	flag.Parse()

	if *backend != "" {
		// The figure experiments select their engine through RunConfig's
		// environment default, so one setenv switches every run the
		// harness makes.
		os.Setenv("STOPIFY_BACKEND", *backend)
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	if *supFlag {
		if err := runSupervisorBench(*supGuests, *supWorkers, *supQuantum, *supBench); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	if *interpBench != "" {
		if err := captureInterpBench(*interpBench); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	if *interpCheck != "" {
		if err := checkInterpBench(*interpCheck); err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("execution engine: %s\n", activeBackend())

	if *fig == "all" {
		out, err := bench.RunAll(cfg)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := bench.Experiments()[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "stopibench: unknown figure %q; choose from %v\n", *fig, bench.Order())
		os.Exit(1)
	}
	out, err := runner(cfg)
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stopibench:", err)
		os.Exit(1)
	}
}

// supervisorBenchFile is the schema of BENCH_supervisor.json: a dated
// snapshot of the multi-tenant throughput target, the serving-scenario
// counterpart of BENCH_interp.json. Config records the knobs the run used,
// so two snapshots are only comparable when their config blocks match — a
// throughput regression at 8 workers is not a regression against a 4-worker
// baseline.
type supervisorBenchFile struct {
	CapturedAt string                  `json:"captured_at"`
	GoVersion  string                  `json:"go_version"`
	Config     supervisorBenchConfig   `json:"config"`
	Result     *supervisor.BenchResult `json:"result"`
}

// supervisorBenchConfig is the config block: the scheduling parameters and
// which execution engine the guests ran on.
type supervisorBenchConfig struct {
	Guests       int    `json:"guests"`
	Workers      int    `json:"workers"`
	QuantumSteps uint64 `json:"quantum_steps"`
	Engine       string `json:"engine"`
}

// runSupervisorBench executes the throughput target: M guests (with a 1%
// hostile infinite-loop injection and an interactive lane share) through an
// N-worker pool, printing guests/sec and the P50/P99 scheduling latency,
// and optionally recording the snapshot.
func runSupervisorBench(guests, workers int, quantum uint64, benchPath string) error {
	cfg := supervisor.BenchConfig{
		Guests:           guests,
		Workers:          workers,
		QuantumSteps:     quantum,
		HostileEvery:     100,
		InteractiveEvery: 4,
		Backend:          os.Getenv("STOPIFY_BACKEND"),
	}
	fmt.Printf("execution engine: %s\n", activeBackend())
	res, err := supervisor.RunBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	if benchPath == "" {
		return nil
	}
	out := supervisorBenchFile{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Config: supervisorBenchConfig{
			Guests:       guests,
			Workers:      workers,
			QuantumSteps: quantum,
			Engine:       activeBackend(),
		},
		Result: res,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(benchPath, append(data, '\n'), 0o644)
}

// activeBackend names the engine the next run would use — the "which
// engine ran" note in every stopibench output.
func activeBackend() string {
	if b := os.Getenv("STOPIFY_BACKEND"); b != "" {
		return b
	}
	return core.BackendTree
}

// interpBenchResult is one row of the interpreter perf baseline. Tree-
// walker rows keep the bare figure name ("Fig10Languages"); bytecode rows
// are suffixed ("Fig10Languages@bytecode") so older snapshots without them
// are skipped, not failed.
type interpBenchResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// interpBenchFile is the schema of BENCH_interp.json: a dated snapshot of
// the interpreter-bound figure benchmarks, so the substrate's perf
// trajectory is tracked PR over PR.
type interpBenchFile struct {
	CapturedAt string              `json:"captured_at"`
	GoVersion  string              `json:"go_version"`
	Config     string              `json:"config"`
	Benchmarks []interpBenchResult `json:"benchmarks"`
}

// interpBenchReps is how many times each (figure, engine) cell runs; the
// minimum is recorded. Minimum-of-N with the engines interleaved is the
// noise discipline for shared single-core runners: time-varying host load
// inflates individual runs but affects both engines' minima equally.
const interpBenchReps = 8

// measureInterpBench times the interpreter-bound figure benchmarks at
// quick settings under both execution engines, interleaved, reporting the
// per-cell minimum.
func measureInterpBench() ([]interpBenchResult, error) {
	cfg := bench.QuickConfig()
	figures := []struct {
		name string
		fn   func(bench.Config) (string, error)
	}{
		{"Fig10Languages", func(c bench.Config) (string, error) {
			s, _, err := bench.Fig10Languages(c)
			return s, err
		}},
		{"Fig13OctaneKraken", bench.Fig13OctaneKraken},
	}
	backends := []string{core.BackendTree, core.BackendBytecode}
	prev, hadPrev := os.LookupEnv("STOPIFY_BACKEND")
	defer func() {
		if hadPrev {
			os.Setenv("STOPIFY_BACKEND", prev)
		} else {
			os.Unsetenv("STOPIFY_BACKEND")
		}
	}()
	var out []interpBenchResult
	for _, f := range figures {
		type cell struct {
			ns     int64
			allocs int64
			bytes  int64
		}
		mins := map[string]cell{}
		for rep := 0; rep < interpBenchReps; rep++ {
			for _, be := range backends {
				os.Setenv("STOPIFY_BACKEND", be)
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				m0, a0 := ms.Mallocs, ms.TotalAlloc
				start := time.Now()
				if _, err := f.fn(cfg); err != nil {
					return nil, fmt.Errorf("%s (%s): %w", f.name, be, err)
				}
				ns := time.Since(start).Nanoseconds()
				runtime.ReadMemStats(&ms)
				cur, ok := mins[be]
				if !ok || ns < cur.ns {
					mins[be] = cell{
						ns:     ns,
						allocs: int64(ms.Mallocs - m0),
						bytes:  int64(ms.TotalAlloc - a0),
					}
				}
			}
		}
		for _, be := range backends {
			name := f.name
			if be != core.BackendTree {
				name += "@" + be
			}
			m := mins[be]
			out = append(out, interpBenchResult{
				Name: name, NsPerOp: m.ns, AllocsPerOp: m.allocs, BytesPerOp: m.bytes,
			})
			fmt.Printf("%-30s %12d ns/op %10d allocs/op %12d B/op\n",
				name, m.ns, m.allocs, m.bytes)
		}
	}
	return out, nil
}

// captureInterpBench measures and writes the baseline snapshot as JSON.
func captureInterpBench(path string) error {
	results, err := measureInterpBench()
	if err != nil {
		return err
	}
	out := interpBenchFile{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Config:     "quick min-of-" + fmt.Sprint(interpBenchReps),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// interpCheckTolerance is how much slower (ns/op) a benchmark may measure
// than the committed snapshot before the check fails. 25% absorbs the
// run-to-run noise of shared CI machines while still catching real
// interpreter regressions, which historically land at 2x, not 1.1x.
const interpCheckTolerance = 1.25

// checkInterpBench re-measures the interpreter benchmarks and compares
// against the snapshot at path, failing on a >25% ns/op regression.
func checkInterpBench(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base interpBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]interpBenchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	results, err := measureInterpBench()
	if err != nil {
		return err
	}
	var failures []string
	for _, r := range results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("%-30s not in snapshot; skipping\n", r.Name)
			continue
		}
		ratio := float64(r.NsPerOp) / float64(b.NsPerOp)
		fmt.Printf("%-30s %12d ns/op vs snapshot %12d (%.2fx)\n",
			r.Name, r.NsPerOp, b.NsPerOp, ratio)
		if ratio > interpCheckTolerance {
			failures = append(failures,
				fmt.Sprintf("%s regressed %.0f%% (%d → %d ns/op)",
					r.Name, (ratio-1)*100, b.NsPerOp, r.NsPerOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("interpreter perf regression beyond %.0f%%:\n  %s",
			(interpCheckTolerance-1)*100, strings.Join(failures, "\n  "))
	}
	fmt.Println("interp-check: within tolerance")
	return nil
}
