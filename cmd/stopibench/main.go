// Command stopibench regenerates the paper's evaluation: every table and
// figure of §2 and §6, measured against this repository's substrates.
//
//	stopibench                # run everything at full settings
//	stopibench -quick         # fast smoke pass
//	stopibench -fig 2c        # one experiment (2a 2b 2c 5 7 10 11 12 13 14 15 strawmen codesize)
//	stopibench -repeats 10    # paper-grade repetition
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment to run (see Order in internal/bench)")
		quick   = flag.Bool("quick", false, "small workloads, single repetition")
		repeats = flag.Int("repeats", 0, "timed runs per data point (default 5, paper uses 10)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	if *fig == "all" {
		out, err := bench.RunAll(cfg)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stopibench:", err)
			os.Exit(1)
		}
		return
	}
	runner, ok := bench.Experiments()[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "stopibench: unknown figure %q; choose from %v\n", *fig, bench.Order())
		os.Exit(1)
	}
	out, err := runner(cfg)
	fmt.Print(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stopibench:", err)
		os.Exit(1)
	}
}
