package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/interp"
	"repro/internal/langs"
)

// -profile mode: run the Octane-like and Kraken-like figure suites under the
// guest-level sampling profiler, on both execution engines, and print a
// top-N table of where each benchmark's statements go, attributed to the
// guest's own JavaScript function names. This is the figure-benchmark
// counterpart of stopifyd's GET /profile — the question it answers is "which
// guest function is hot", not "which Go function is hot" (that is -pprof-addr
// on the daemon, or go test -cpuprofile here).

// defaultProfileEvery is the sampling period when -profile-every is not set:
// fine enough that the shortest Kraken-like kernel still collects hundreds of
// samples, coarse enough to keep sampling overhead in the noise.
const defaultProfileEvery = 1000

// profileRow is one function's aggregate across a benchmark's folded stacks.
type profileRow struct {
	name string
	self uint64 // statements attributed while the function was the leaf
	cum  uint64 // statements attributed while it was anywhere on the stack
}

// foldProfile turns a folded-stack map into per-function self/cumulative
// rows plus the total sampled weight. Cumulative counts each function once
// per stack, so recursion does not double-count.
func foldProfile(folded map[string]uint64) ([]profileRow, uint64) {
	self := map[string]uint64{}
	cum := map[string]uint64{}
	var total uint64
	for stack, n := range folded {
		total += n
		frames := strings.Split(stack, ";")
		self[frames[len(frames)-1]] += n
		seen := map[string]bool{}
		for _, f := range frames {
			if !seen[f] {
				seen[f] = true
				cum[f] += n
			}
		}
	}
	rows := make([]profileRow, 0, len(self))
	for name := range cum {
		rows = append(rows, profileRow{name: name, self: self[name], cum: cum[name]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].self != rows[j].self {
			return rows[i].self > rows[j].self
		}
		if rows[i].cum != rows[j].cum {
			return rows[i].cum > rows[j].cum
		}
		return rows[i].name < rows[j].name
	})
	return rows, total
}

// profileOne compiles and runs one benchmark source with the sampler armed
// and returns its folded profile.
func profileOne(src, backend string, every uint64) (map[string]uint64, error) {
	js := langs.JavaScript()
	c, err := core.Compile(src, js.Opts(core.Defaults()))
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	run, err := c.NewRun(core.RunConfig{
		Clock:        eventloop.NewVirtualClock(),
		Backend:      backend,
		ProfileEvery: every,
	})
	if err != nil {
		return nil, err
	}
	if err := run.RunToCompletion(); err != nil {
		return nil, err
	}
	return run.TakeProfileFolded(), nil
}

// runProfileMode is stopibench -profile: the full Octane-like + Kraken-like
// suite under both engines, each benchmark reported as a top-N self/cumulative
// table over sampled statements.
func runProfileMode(every uint64, topN int) error {
	if !interp.ProfilerEnabled() {
		return fmt.Errorf("this binary was built with the stopify_noprof tag; rebuild without it to profile")
	}
	if every == 0 {
		every = defaultProfileEvery
	}
	if topN <= 0 {
		topN = 10
	}
	suite := append(langs.OctaneLike(), langs.KrakenLike()...)
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		fmt.Printf("== engine %s — sampling every %d statements ==\n", backend, every)
		for _, b := range suite {
			folded, err := profileOne(b.Source, backend, every)
			if err != nil {
				return fmt.Errorf("%s (%s): %w", b.Name, backend, err)
			}
			rows, total := foldProfile(folded)
			fmt.Printf("\n%s (%d sampled statements, %d functions):\n", b.Name, total, len(rows))
			fmt.Printf("  %-28s %12s %6s %12s %6s\n", "function", "self", "self%", "cum", "cum%")
			for i, r := range rows {
				if i >= topN {
					break
				}
				fmt.Printf("  %-28s %12d %5.1f%% %12d %5.1f%%\n",
					r.name, r.self, pct(r.self, total), r.cum, pct(r.cum, total))
			}
		}
		fmt.Println()
	}
	return nil
}

func pct(n, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
